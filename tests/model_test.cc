/**
 * @file
 * Tests for the Section 3.2 analytical model: the equations'
 * monotonicity/limit properties and the paper's headline claims.
 */

#include <gtest/gtest.h>

#include "model/analytical.hh"

using namespace widx;
using namespace widx::model;

TEST(Model, HashCyclesIndependentOfWalkMissRatio)
{
    ModelParams p;
    EXPECT_GT(hashCycles(p), p.hashCompCycles);
}

TEST(Model, WalkCyclesGrowWithMissRatio)
{
    ModelParams p;
    double prev = 0.0;
    for (double m = 0.0; m <= 1.0; m += 0.1) {
        double c = walkNodeCycles(p, m);
        EXPECT_GT(c, prev);
        prev = c;
    }
    EXPECT_NEAR(walkNodeCycles(p, 1.0) - walkNodeCycles(p, 0.0),
                p.memLatency, 1e-9);
}

TEST(Model, MemOpsPerCycleLinearInWalkers)
{
    ModelParams p;
    double one = memOpsPerCycle(p, 0.3, 1);
    for (unsigned n = 2; n <= 10; ++n)
        EXPECT_NEAR(memOpsPerCycle(p, 0.3, n), n * one, 1e-9);
}

TEST(Model, MemOpsPerCycleDecreasesWithMissRatio)
{
    ModelParams p;
    EXPECT_GT(memOpsPerCycle(p, 0.0, 8), memOpsPerCycle(p, 1.0, 8));
}

TEST(Model, Figure4bOutstandingMissesAreTwoPerWalker)
{
    ModelParams p;
    for (unsigned n = 1; n <= 10; ++n)
        EXPECT_DOUBLE_EQ(outstandingMisses(p, n), 2.0 * n);
}

TEST(Model, MshrLimitMatchesPaper)
{
    // "Assuming 8 to 10 MSHRs..., the number of concurrent walkers
    // is limited to four or five."
    ModelParams p8;
    p8.mshrs = 8;
    EXPECT_EQ(maxWalkersByMshrs(p8), 4u);
    ModelParams p10;
    p10.mshrs = 10;
    EXPECT_EQ(maxWalkersByMshrs(p10), 5u);
}

TEST(Model, L1PortLimitMatchesPaper)
{
    // "a single-ported L1-D becomes the bottleneck for more than six
    // walkers ... a two-ported L1-D can comfortably support 10."
    ModelParams one_port;
    one_port.l1Ports = 1.0;
    unsigned max1 = maxWalkersByL1Bandwidth(one_port, 0.1);
    EXPECT_GE(max1, 5u);
    EXPECT_LE(max1, 7u);
    ModelParams two_ports;
    EXPECT_GE(maxWalkersByL1Bandwidth(two_ports, 0.1), 10u);
}

TEST(Model, WalkersPerMcMatchesPaperAnchors)
{
    ModelParams p;
    // Low miss ratio: ~8 walkers per MC; high: ~4-5.
    EXPECT_NEAR(walkersPerMc(p, 0.1), 8.0, 1.5);
    EXPECT_NEAR(walkersPerMc(p, 1.0), 4.75, 1.0);
    // Monotone decreasing.
    EXPECT_GT(walkersPerMc(p, 0.1), walkersPerMc(p, 0.9));
}

TEST(Model, UtilizationCappedAtOne)
{
    ModelParams p;
    for (double m = 0.0; m <= 1.0; m += 0.25)
        for (unsigned n : {2u, 4u, 8u})
            for (double nodes : {1.0, 2.0, 3.0}) {
                double u = walkerUtilization(p, m, n, nodes);
                EXPECT_GE(u, 0.0);
                EXPECT_LE(u, 1.0);
            }
}

TEST(Model, UtilizationShapeMatchesFigure5)
{
    ModelParams p;
    // More walkers -> lower utilization at fixed miss ratio.
    EXPECT_GT(walkerUtilization(p, 0.0, 2, 1.0),
              walkerUtilization(p, 0.0, 8, 1.0));
    // Deeper buckets -> higher utilization.
    EXPECT_GT(walkerUtilization(p, 0.0, 4, 3.0),
              walkerUtilization(p, 0.0, 4, 1.0));
    // Higher miss ratio -> higher utilization (walkers stall more).
    EXPECT_GT(walkerUtilization(p, 0.8, 4, 1.0),
              walkerUtilization(p, 0.0, 4, 1.0));
    // The paper's summary: one dispatcher feeds four walkers except
    // for very shallow buckets with low miss ratios.
    EXPECT_LT(walkerUtilization(p, 0.0, 4, 1.0), 0.6);
    EXPECT_NEAR(walkerUtilization(p, 0.5, 4, 2.0), 1.0, 0.01);
}

TEST(Model, McBlocksPerCycleFromBandwidth)
{
    ModelParams p;
    // 9 GB/s effective / 64 B / 2 GHz ~ 0.07 blocks per cycle.
    EXPECT_NEAR(p.mcBlocksPerCycle(), 0.0703, 0.001);
}
