/**
 * @file
 * Unit tests for the Widx ISA: Table 1 legality, instruction
 * encode/decode round trips (property-style over all opcodes and
 * field values), and program validation.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/program.hh"

using namespace widx;
using namespace widx::isa;

TEST(Isa, OpcodeNamesRoundTrip)
{
    for (unsigned i = 0; i < unsigned(Opcode::NumOpcodes); ++i) {
        Opcode op = Opcode(i);
        EXPECT_EQ(opcodeFromName(opcodeName(op)), op);
    }
    EXPECT_EQ(opcodeFromName("bogus"), Opcode::NumOpcodes);
}

TEST(Isa, Table1Legality)
{
    // ST is producer-only.
    EXPECT_FALSE(legalFor(Opcode::ST, UnitKind::Dispatcher));
    EXPECT_FALSE(legalFor(Opcode::ST, UnitKind::Walker));
    EXPECT_TRUE(legalFor(Opcode::ST, UnitKind::Producer));
    // ADD-SHF: dispatcher and walker.
    EXPECT_TRUE(legalFor(Opcode::ADD_SHF, UnitKind::Dispatcher));
    EXPECT_TRUE(legalFor(Opcode::ADD_SHF, UnitKind::Walker));
    EXPECT_FALSE(legalFor(Opcode::ADD_SHF, UnitKind::Producer));
    // AND-SHF / XOR-SHF: dispatcher only.
    for (Opcode op : {Opcode::AND_SHF, Opcode::XOR_SHF}) {
        EXPECT_TRUE(legalFor(op, UnitKind::Dispatcher));
        EXPECT_FALSE(legalFor(op, UnitKind::Walker));
        EXPECT_FALSE(legalFor(op, UnitKind::Producer));
    }
    // Core RISC ops are universal.
    for (Opcode op : {Opcode::ADD, Opcode::AND, Opcode::BA,
                      Opcode::BLE, Opcode::CMP, Opcode::CMP_LE,
                      Opcode::LD, Opcode::SHL, Opcode::SHR,
                      Opcode::TOUCH, Opcode::XOR}) {
        for (UnitKind u : {UnitKind::Dispatcher, UnitKind::Walker,
                           UnitKind::Producer})
            EXPECT_TRUE(legalFor(op, u))
                << opcodeName(op) << " on " << unitKindName(u);
    }
}

TEST(Isa, BranchAndMemoryClassification)
{
    EXPECT_TRUE(isBranch(Opcode::BA));
    EXPECT_TRUE(isBranch(Opcode::BLE));
    EXPECT_FALSE(isBranch(Opcode::ADD));
    EXPECT_TRUE(isMemory(Opcode::LD));
    EXPECT_TRUE(isMemory(Opcode::ST));
    EXPECT_TRUE(isMemory(Opcode::TOUCH));
    EXPECT_FALSE(isMemory(Opcode::XOR));
}

/** Property: encode/decode is the identity for every opcode across a
 *  grid of field values. */
class EncodeRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EncodeRoundTrip, AllFieldsSurvive)
{
    const Opcode op = Opcode(GetParam());
    for (u8 rd : {0, 1, 15, 31}) {
        for (u8 ra : {0, 7, 30}) {
            for (u8 shamt : {0, 13, 63}) {
                for (i16 imm : {i16(0), i16(42), i16(-8),
                                i16(32767)}) {
                    Instruction inst;
                    inst.op = op;
                    inst.rd = rd;
                    inst.ra = ra;
                    inst.rb = u8(31 - ra);
                    inst.shamt = shamt;
                    inst.sdir = shamt & 1 ? ShiftDir::Lsr
                                          : ShiftDir::Lsl;
                    inst.imm = imm;
                    EXPECT_EQ(Instruction::decode(inst.encode()),
                              inst);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, EncodeRoundTrip,
    ::testing::Range(0u, unsigned(Opcode::NumOpcodes)));

TEST(Instruction, ToStringFormats)
{
    EXPECT_EQ(Instruction::alu(Opcode::ADD, 1, 2, 3).toString(),
              "add     r1, r2, r3");
    EXPECT_EQ(Instruction::load(4, 5, -8).toString(),
              "ld      r4, [r5 + -8]");
    EXPECT_EQ(Instruction::fused(Opcode::XOR_SHF, 6, 7, 8,
                                 ShiftDir::Lsr, 33)
                  .toString(),
              "xorshf  r6, r7, r8, lsr #33");
}

TEST(Program, ValidateCatchesIllegalOpcode)
{
    Program p("bad", UnitKind::Walker);
    p.append(Instruction::store(1, 0, 2)); // ST illegal on walker
    std::string err;
    EXPECT_FALSE(p.validate(err));
    EXPECT_NE(err.find("st"), std::string::npos);
    p.setRelaxedLegality(true);
    EXPECT_TRUE(p.validate(err));
}

TEST(Program, ValidateCatchesBadBranchTarget)
{
    Program p("bad", UnitKind::Producer);
    p.append(Instruction::branchAlways(5)); // size 1, target 5
    std::string err;
    EXPECT_FALSE(p.validate(err));
}

TEST(Program, BranchToHaltAddressIsValid)
{
    Program p("ok", UnitKind::Producer);
    p.append(Instruction::branchAlways(1)); // one past the end
    std::string err;
    EXPECT_TRUE(p.validate(err)) << err;
}

TEST(Program, ValidateCatchesWriteToZeroRegister)
{
    Program p("bad", UnitKind::Dispatcher);
    p.append(Instruction::alu(Opcode::ADD, 0, 1, 2));
    std::string err;
    EXPECT_FALSE(p.validate(err));
    EXPECT_NE(err.find("r0"), std::string::npos);
}

TEST(Program, RegisterImageAndCounts)
{
    Program p("prog", UnitKind::Dispatcher);
    p.setReg(5, 0xDEADull);
    EXPECT_EQ(p.reg(5), 0xDEADull);
    p.append(Instruction::alu(Opcode::ADD, 1, 2, 3));
    p.append(Instruction::alu(Opcode::ADD, 1, 1, 3));
    p.append(Instruction::load(2, 1, 0));
    EXPECT_EQ(p.countOpcode(Opcode::ADD), 2u);
    EXPECT_EQ(p.countOpcode(Opcode::LD), 1u);
    EXPECT_EQ(p.size(), 3u);
}
