/**
 * @file
 * Tests for the baseline core models: trace generation fidelity and
 * the OoO / in-order timing semantics (width, ROB, dependences,
 * mispredict gating, outstanding-load caps).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "common/arena.hh"
#include "common/rng.hh"
#include "cpu/probe_run.hh"
#include "db/hash_index.hh"

using namespace widx;
using namespace widx::cpu;

namespace {

struct VecTrace : TraceSource
{
    std::vector<Uop> v;
    std::size_t i = 0;

    bool
    next(Uop &o) override
    {
        if (i >= v.size())
            return false;
        o = v[i++];
        return true;
    }
};

Uop
alu(u16 dep = 0)
{
    Uop u;
    u.kind = UopKind::Alu;
    u.dep0 = dep;
    return u;
}

Uop
load(Addr a, u16 dep = 0)
{
    Uop u;
    u.kind = UopKind::Load;
    u.addr = a;
    u.dep0 = dep;
    return u;
}

} // namespace

TEST(CoreModel, WidthLimitsThroughput)
{
    // 400 independent ALU ops: a 4-wide core needs ~100 cycles, a
    // 2-wide core ~200.
    VecTrace t;
    for (int i = 0; i < 400; ++i)
        t.v.push_back(alu());
    sim::MemSystem m1, m2;
    CoreResult r4 = runCore(t, m1, CoreParams::ooo(), 0);
    t.i = 0;
    CoreParams two = CoreParams::ooo();
    two.width = 2;
    CoreResult r2 = runCore(t, m2, two, 0);
    EXPECT_NEAR(double(r4.totalCycles), 100.0, 5.0);
    EXPECT_NEAR(double(r2.totalCycles), 200.0, 5.0);
}

TEST(CoreModel, DependenceChainsSerialize)
{
    // A 400-deep dependent ALU chain takes ~400 cycles regardless of
    // width.
    VecTrace t;
    t.v.push_back(alu());
    for (int i = 0; i < 399; ++i)
        t.v.push_back(alu(1));
    sim::MemSystem m;
    CoreResult r = runCore(t, m, CoreParams::ooo(), 0);
    EXPECT_NEAR(double(r.totalCycles), 400.0, 5.0);
}

TEST(CoreModel, MispredictGateSerializesProbes)
{
    // load (DRAM) -> mispredicted dependent branch, repeated:
    // every iteration pays the full memory latency plus the penalty.
    VecTrace t;
    const Addr base = 0x7f4000000000ull;
    const int n = 200;
    for (int k = 0; k < n; ++k) {
        t.v.push_back(load(base + u64(k) * 4096));
        Uop br;
        br.kind = UopKind::Branch;
        br.dep0 = 1;
        br.mispredicted = true;
        br.endOfProbe = true;
        t.v.push_back(br);
    }
    sim::MemSystem m;
    CoreResult r = runCore(t, m, CoreParams::ooo(), 0);
    EXPECT_GT(r.cyclesPerTuple, 100.0);
    EXPECT_EQ(r.mispredicts, u64(n));
    EXPECT_EQ(r.probes, u64(n));

    // Without mispredicts the loads overlap: much faster.
    for (Uop &u : t.v)
        u.mispredicted = false;
    t.i = 0;
    sim::MemSystem m2;
    CoreResult r2 = runCore(t, m2, CoreParams::ooo(), 0);
    EXPECT_LT(r2.cyclesPerTuple, r.cyclesPerTuple / 2.0);
}

TEST(CoreModel, InOrderSlowerThanOoO)
{
    // Alternating independent loads and ALU work: the OoO core
    // overlaps them, the in-order core mostly cannot.
    VecTrace t;
    const Addr base = 0x7f5000000000ull;
    for (int k = 0; k < 300; ++k) {
        t.v.push_back(load(base + u64(k) * 4096));
        t.v.push_back(alu(1));
        Uop br;
        br.kind = UopKind::Branch;
        br.dep0 = 1;
        br.endOfProbe = true;
        t.v.push_back(br);
    }
    sim::MemSystem m1, m2;
    CoreResult ooo = runCore(t, m1, CoreParams::ooo(), 0);
    t.i = 0;
    CoreResult io = runCore(t, m2, CoreParams::inorder(), 0);
    EXPECT_GT(io.totalCycles, ooo.totalCycles);
}

TEST(CoreModel, WarmupExcludesEarlyProbes)
{
    VecTrace t;
    for (int k = 0; k < 100; ++k) {
        Uop br;
        br.kind = UopKind::Branch;
        br.endOfProbe = true;
        t.v.push_back(alu());
        t.v.push_back(br);
    }
    sim::MemSystem m;
    CoreResult r = runCore(t, m, CoreParams::ooo(), 40);
    EXPECT_EQ(r.probes, 100u);
    EXPECT_EQ(r.measuredProbes, 60u);
    EXPECT_LT(r.measuredCycles, r.totalCycles);
}

TEST(TraceGen, StructureMatchesIndexGeometry)
{
    Arena arena;
    db::Column keys("k", db::ValueKind::U64, arena, 64);
    for (u64 i = 0; i < 64; ++i)
        keys.push(i + 1);
    db::IndexSpec spec;
    spec.buckets = 64;
    spec.hashFn = db::HashFn::kernelMaskXor();
    db::HashIndex idx(spec, arena);
    idx.buildFromColumn(keys);

    TraceGenOptions opts;
    opts.mispredictRate = 0.0;
    ProbeTraceGen gen(idx, keys, opts);
    Uop u;
    u64 probes = 0;
    u64 loads = 0;
    u64 hash_alus = 0;
    while (gen.next(u)) {
        if (u.endOfProbe)
            ++probes;
        if (u.kind == UopKind::Load)
            ++loads;
        if (u.kind == UopKind::Alu && u.phase == UopPhase::Hash)
            ++hash_alus;
    }
    EXPECT_EQ(probes, 64u);
    // Per probe: key + node-key + payload (all match) + next = 4.
    EXPECT_EQ(loads / probes, 4u);
    // Per probe: bookkeeping + 2 hash steps + 2 address ALUs = 5.
    EXPECT_EQ(hash_alus / probes, 5u);
}

/** Batched dispatch (the software pipeline's schedule) reorders
 *  µops — all hash phases of a group before any walk — but must
 *  preserve the per-probe µop population: same loads at the same
 *  addresses, same per-kind counts, same probe count. */
TEST(TraceGen, BatchedDispatchPreservesUopPopulation)
{
    Arena arena;
    db::Column keys("k", db::ValueKind::U64, arena, 64);
    Rng rng(17);
    for (u64 i = 0; i < 64; ++i)
        keys.push(1 + rng.below(200));
    db::IndexSpec spec;
    spec.buckets = 64;
    db::HashIndex idx(spec, arena);
    idx.buildFromColumn(keys);

    auto census = [&](unsigned group) {
        TraceGenOptions opts;
        opts.mispredictRate = 0.0;
        opts.batchGroup = group;
        ProbeTraceGen gen(idx, keys, opts);
        Uop u;
        std::multiset<Addr> load_addrs;
        std::map<int, u64> kinds;
        u64 probes = 0;
        while (gen.next(u)) {
            ++kinds[int(u.kind)];
            if (u.kind == UopKind::Load)
                load_addrs.insert(u.addr);
            if (u.endOfProbe)
                ++probes;
        }
        return std::tuple{load_addrs, kinds, probes};
    };

    const auto inline_census = census(1);
    for (unsigned group : {4u, 16u, 64u, 100u})
        EXPECT_EQ(census(group), inline_census)
            << "group " << group;
}

/** With batched dispatch, a group's hash µops all precede its walk
 *  µops in emission order. */
TEST(TraceGen, BatchedDispatchDecouplesPhases)
{
    Arena arena;
    db::Column keys("k", db::ValueKind::U64, arena, 8);
    for (u64 i = 0; i < 8; ++i)
        keys.push(i + 1);
    db::IndexSpec spec;
    spec.buckets = 8;
    db::HashIndex idx(spec, arena);
    idx.buildFromColumn(keys);

    TraceGenOptions opts;
    opts.mispredictRate = 0.0;
    opts.batchGroup = 8;
    ProbeTraceGen gen(idx, keys, opts);
    Uop u;
    bool seen_walk = false;
    u64 hash_after_walk = 0;
    while (gen.next(u)) {
        if (u.phase == UopPhase::Walk)
            seen_walk = true;
        else if (u.phase == UopPhase::Hash && seen_walk)
            ++hash_after_walk;
    }
    // One group of 8: every hash µop is emitted before any walk.
    EXPECT_EQ(hash_after_walk, 0u);
}

TEST(TraceGen, IndirectAddsKeyDereference)
{
    Arena arena;
    db::Column keys("k", db::ValueKind::U64, arena, 32);
    for (u64 i = 0; i < 32; ++i)
        keys.push(i + 1);
    db::IndexSpec spec;
    spec.buckets = 32;
    spec.indirectKeys = true;
    db::HashIndex idx(spec, arena);
    idx.buildFromColumn(keys);

    TraceGenOptions opts;
    ProbeTraceGen gen(idx, keys, opts);
    Uop u;
    u64 loads = 0;
    u64 probes = 0;
    while (gen.next(u)) {
        if (u.kind == UopKind::Load)
            ++loads;
        if (u.endOfProbe)
            ++probes;
    }
    EXPECT_EQ(loads / probes, 5u); // one extra load per node
}

TEST(TraceGen, ExitMispredictRateIsRespected)
{
    // A cold (larger-than-predictor-warm) index; only the probes'
    // final exit branches are counted, since match branches draw
    // their own data-driven mispredicts.
    Arena arena;
    const u64 entries = 8192;
    db::Column keys("k", db::ValueKind::U64, arena, 4000);
    Rng rng(3);
    for (u64 i = 0; i < 4000; ++i)
        keys.push(1 + rng.below(entries));
    db::IndexSpec spec;
    spec.buckets = entries;
    db::HashIndex idx(spec, arena);
    for (u64 i = 1; i <= entries; ++i)
        idx.insert(i, i);

    for (double rate : {0.0, 0.5, 1.0}) {
        TraceGenOptions opts;
        opts.mispredictRate = rate;
        ProbeTraceGen gen(idx, keys, opts);
        Uop u;
        u64 mis = 0;
        u64 probes = 0;
        while (gen.next(u)) {
            if (u.endOfProbe) {
                ++probes;
                if (u.mispredicted)
                    ++mis;
            }
        }
        EXPECT_NEAR(double(mis) / double(probes), rate, 0.05);
    }
}

TEST(TraceGen, HotIndexScalesMispredictsDown)
{
    Arena arena;
    db::Column keys("k", db::ValueKind::U64, arena, 4000);
    Rng rng(3);
    for (u64 i = 0; i < 4000; ++i)
        keys.push(1 + rng.below(512));
    db::IndexSpec spec;
    spec.buckets = 512;
    db::HashIndex idx(spec, arena);
    for (u64 i = 1; i <= 512; ++i)
        idx.insert(i, i);

    TraceGenOptions opts;
    opts.mispredictRate = 1.0;
    ProbeTraceGen gen(idx, keys, opts);
    Uop u;
    u64 mis = 0;
    u64 probes = 0;
    while (gen.next(u)) {
        if (u.endOfProbe) {
            ++probes;
            if (u.mispredicted)
                ++mis;
        }
    }
    EXPECT_NEAR(double(mis) / double(probes), opts.hotIndexFactor,
                0.05);
}

TEST(ProbeRun, HashFractionGrowsWithHashCost)
{
    Arena arena;
    Rng rng(9);
    db::Column build("b", db::ValueKind::U64, arena, 512);
    db::Column probe("p", db::ValueKind::U64, arena, 20000);
    for (u64 i = 0; i < 512; ++i)
        build.push(i + 1);
    for (u64 i = 0; i < 20000; ++i)
        probe.push(1 + rng.below(512));

    auto frac = [&](db::HashFn fn) {
        db::IndexSpec spec;
        spec.buckets = 512;
        spec.hashFn = std::move(fn);
        db::HashIndex idx(spec, arena);
        idx.buildFromColumn(build);
        ProbeRunConfig cfg;
        cfg.warmupFraction = 0.1;
        return runProbeLoop(idx, probe, cfg).hashFraction();
    };
    double cheap = frac(db::HashFn::kernelMaskXor());
    double expensive = frac(db::HashFn::doubleKey());
    EXPECT_GT(expensive, cheap);
    // L1-resident index with a 12-step hash: hash should dominate
    // (the paper's q5/q37/q82 observation: >50%).
    EXPECT_GT(expensive, 0.5);
}

TEST(ProbeRun, BiggerIndexCostsMoreCycles)
{
    Rng rng(11);
    auto run = [&](u64 tuples) {
        Arena arena;
        db::Column build("b", db::ValueKind::U64, arena, tuples);
        db::Column probe("p", db::ValueKind::U64, arena, 30000);
        for (u64 i = 0; i < tuples; ++i)
            build.push(i + 1);
        for (u64 i = 0; i < 30000; ++i)
            probe.push(1 + rng.below(tuples));
        db::IndexSpec spec;
        spec.buckets = tuples;
        db::HashIndex idx(spec, arena);
        idx.buildFromColumn(build);
        ProbeRunConfig cfg;
        return runProbeLoop(idx, probe, cfg).cyclesPerTuple;
    };
    double small = run(4 * 1024);
    double large = run(2 * 1024 * 1024);
    EXPECT_GT(large, 1.5 * small);
}
