/**
 * @file
 * Tests for workload generation: distributions, the join kernel, and
 * the DSS query specs/datasets.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/distributions.hh"
#include "workload/dss_queries.hh"
#include "workload/join_kernel.hh"

using namespace widx;
using namespace widx::wl;

TEST(Distributions, UniformRangeAndDeterminism)
{
    Rng a(5), b(5);
    auto k1 = uniformKeys(1000, 100, a);
    auto k2 = uniformKeys(1000, 100, b);
    EXPECT_EQ(k1, k2);
    for (u64 k : k1) {
        EXPECT_GE(k, 1u);
        EXPECT_LE(k, 100u);
    }
}

TEST(Distributions, ShuffledDenseIsAPermutation)
{
    Rng rng(7);
    auto keys = shuffledDenseKeys(1000, rng);
    std::set<u64> unique(keys.begin(), keys.end());
    EXPECT_EQ(unique.size(), 1000u);
    EXPECT_EQ(*unique.begin(), 1u);
    EXPECT_EQ(*unique.rbegin(), 1000u);
    // Actually shuffled: not identity.
    bool moved = false;
    for (u64 i = 0; i < keys.size(); ++i)
        if (keys[i] != i + 1)
            moved = true;
    EXPECT_TRUE(moved);
}

TEST(Distributions, ZipfSkewsTowardSmallKeys)
{
    Rng rng(9);
    auto keys = zipfKeys(20000, 1000, 0.99, rng);
    u64 head = 0;
    for (u64 k : keys) {
        ASSERT_GE(k, 1u);
        ASSERT_LE(k, 1000u);
        if (k <= 10)
            ++head;
    }
    // With theta ~1, the top-10 keys draw a large share.
    EXPECT_GT(double(head) / double(keys.size()), 0.2);
}

TEST(Distributions, ZipfZeroThetaIsUniformish)
{
    Rng rng(11);
    auto keys = zipfKeys(20000, 100, 0.0, rng);
    u64 head = 0;
    for (u64 k : keys)
        if (k <= 10)
            ++head;
    EXPECT_NEAR(double(head) / double(keys.size()), 0.10, 0.02);
}

TEST(Distributions, MixedHitRateControlsMatches)
{
    Rng rng(13);
    for (double rate : {0.2, 0.8}) {
        auto keys = mixedHitKeys(20000, 1000, 2000, rate, rng);
        u64 hits = 0;
        for (u64 k : keys)
            if (k <= 1000)
                ++hits;
        EXPECT_NEAR(double(hits) / double(keys.size()), rate, 0.03);
    }
}

TEST(JoinKernel, SizesMatchPaperRegimes)
{
    EXPECT_EQ(KernelSize::small().tuples, 4096u);
    EXPECT_EQ(KernelSize::medium().tuples, 512u * 1024);
    // Large is scaled from the paper's 128M (DESIGN.md §1) but must
    // stay far beyond the 4 MB LLC.
    KernelDataset small(KernelSize::small());
    EXPECT_LT(small.index->footprintBytes(), 4u << 20);
    EXPECT_GT(small.index->footprintBytes(), 32u << 10);
}

TEST(JoinKernel, EveryProbeMatchesExactlyOnce)
{
    KernelSize tiny{"Tiny", 2048, 5000};
    KernelDataset data(tiny);
    // Build keys are a dense permutation; probes are uniform over
    // them, so each probe finds exactly one node.
    u64 matches = 0;
    for (RowId r = 0; r < data.probeKeys->size(); ++r)
        matches += data.index->probe(data.probeKeys->at(r));
    EXPECT_EQ(matches, 5000u);
    // Bucket depth stays at the kernel's "up to two nodes".
    EXPECT_LE(data.index->maxBucketDepth(), 2u);
}

TEST(DssQueries, SpecTableShape)
{
    const auto &sims = dssSimQueries();
    EXPECT_EQ(sims.size(), 12u);
    unsigned tpch = 0;
    for (const DssQuerySpec &s : sims) {
        if (std::string(s.suite) == "TPC-H")
            ++tpch;
        EXPECT_GT(s.indexTuples, 0u);
        EXPECT_GT(s.probes, 0u);
        EXPECT_GT(s.indexFraction, 0.0);
        EXPECT_LE(s.indexFraction, 1.0);
    }
    EXPECT_EQ(tpch, 6u);

    const auto &plans = dssPlanQueries();
    EXPECT_EQ(plans.size(), 25u); // 16 TPC-H + 9 TPC-DS (Fig. 2a)
}

TEST(DssQueries, Q20UsesExpensiveDoubleHash)
{
    for (const DssQuerySpec &s : dssSimQueries()) {
        if (std::string(s.name) == "qry20") {
            EXPECT_EQ(s.keyKind, db::ValueKind::F64);
            EXPECT_EQ(makeHashFn(s.hash).compOps(), 12u);
            return;
        }
    }
    FAIL() << "qry20 missing";
}

TEST(DssQueries, DatasetRespectsSpec)
{
    DssQuerySpec spec = dssSimQueries().front();
    spec.indexTuples = 4096;
    spec.probes = 20000;
    spec.matchRate = 0.6;
    DssDataset data(spec);
    EXPECT_EQ(data.buildKeys->size(), 4096u);
    EXPECT_EQ(data.probeKeys->size(), 20000u);
    EXPECT_TRUE(data.index->indirectKeys());
    u64 matches = 0;
    for (RowId r = 0; r < data.probeKeys->size(); ++r)
        if (data.index->lookup(data.probeKeys->at(r)) !=
            db::kNotFound)
            ++matches;
    EXPECT_NEAR(double(matches) / 20000.0, 0.6, 0.05);
}

TEST(DssQueries, TpcDsIndexesAreSmallerThanTpcH)
{
    // The 429-column effect (Section 6.2 footnote).
    double tpch = 0.0;
    double tpcds = 0.0;
    unsigned nh = 0;
    unsigned nd = 0;
    for (const DssQuerySpec &s : dssSimQueries()) {
        if (std::string(s.suite) == "TPC-H") {
            tpch += double(s.indexTuples);
            ++nh;
        } else {
            tpcds += double(s.indexTuples);
            ++nd;
        }
    }
    EXPECT_GT(tpch / nh, 10.0 * tpcds / nd);
}

TEST(DssQueries, RunPlanProducesFullBreakdown)
{
    // A scaled-down spec keeps the test fast.
    PlanSpec spec{"test", "TPC-H", 50000, 16 * 1024, 2,
                  200000, 20000, 20000, 0.5};
    db::PlanBreakdown bd = runPlan(spec);
    EXPECT_GT(bd.total(), 0.0);
    for (auto c : {db::OpClass::Index, db::OpClass::Scan,
                   db::OpClass::SortJoin, db::OpClass::Other})
        EXPECT_GT(bd.seconds(c), 0.0) << db::opClassName(c);
}
