/**
 * @file
 * Tests for widx::Topology (src/common/topology.{hh,cc}): sysfs
 * cpulist parsing against injected fake trees (1-node, 2-node,
 * sparse/offline-CPU layouts), affinity-mask intersection, the
 * slot -> node/CPU placement queries the service's shard-affine
 * routing is built on, and the folding behavior of the pinning
 * helpers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#include <unistd.h>
#endif

#include "common/topology.hh"

using namespace widx;
namespace fs = std::filesystem;

namespace {

/** A throwaway sysfs-style node tree: node<N>/cpulist files under a
 *  temp dir, removed on destruction. */
class FakeSysfs
{
  public:
    explicit FakeSysfs(
        const std::vector<std::string> &cpulists)
    {
#if defined(__linux__)
        const long uniq = long(::getpid());
#else
        const long uniq = 0;
#endif
        root_ = fs::temp_directory_path() /
                ("widx_topo_" + std::to_string(uniq) + "_" +
                 std::to_string(counter_++));
        fs::remove_all(root_); // stale leftovers from crashed runs
        for (std::size_t n = 0; n < cpulists.size(); ++n) {
            const fs::path dir =
                root_ / ("node" + std::to_string(n));
            fs::create_directories(dir);
            std::ofstream f(dir / "cpulist");
            f << cpulists[n];
        }
        fs::create_directories(root_); // 0-node trees still exist
    }

    ~FakeSysfs() { fs::remove_all(root_); }

    std::string path() const { return root_.string(); }

  private:
    fs::path root_;
    static inline int counter_ = 0;
};

} // namespace

TEST(Topology, ParsesSingleNodeTree)
{
    FakeSysfs tree({"0-3\n"});
    const Topology t = Topology::fromSysfs(tree.path());
    EXPECT_EQ(t.nodes(), 1u);
    EXPECT_EQ(t.cpus(), 4u);
    ASSERT_EQ(t.cpusOnNode(0).size(), 4u);
    for (unsigned c = 0; c < 4; ++c) {
        EXPECT_EQ(t.cpusOnNode(0)[c], c);
        EXPECT_EQ(t.nodeOfCpu(c), 0);
    }
    EXPECT_EQ(t.nodeOfCpu(4), -1);
}

TEST(Topology, ParsesTwoNodeTree)
{
    FakeSysfs tree({"0-3\n", "4-7\n"});
    const Topology t = Topology::fromSysfs(tree.path());
    EXPECT_EQ(t.nodes(), 2u);
    EXPECT_EQ(t.cpus(), 8u);
    EXPECT_EQ(t.nodeOfCpu(2), 0);
    EXPECT_EQ(t.nodeOfCpu(5), 1);
    EXPECT_EQ(t.cpuOnNode(1, 0), 4u);
}

TEST(Topology, ParsesSparseAndOfflineCpuLayouts)
{
    // Holes inside a node's list (offlined CPUs) and interleaved
    // node<->CPU striping, the way some BIOSes enumerate.
    FakeSysfs tree({"0,2-3,8\n", "5-6,9,11\n"});
    const Topology t = Topology::fromSysfs(tree.path());
    EXPECT_EQ(t.nodes(), 2u);
    EXPECT_EQ(t.cpus(), 8u);
    EXPECT_EQ(t.nodeOfCpu(8), 0);
    EXPECT_EQ(t.nodeOfCpu(11), 1);
    EXPECT_EQ(t.nodeOfCpu(1), -1);  // offline hole
    EXPECT_EQ(t.nodeOfCpu(4), -1);
    const auto n0 = t.cpusOnNode(0);
    ASSERT_EQ(n0.size(), 4u);
    EXPECT_EQ(n0[0], 0u);
    EXPECT_EQ(n0[1], 2u);
    EXPECT_EQ(n0[3], 8u);
}

TEST(Topology, HonorsAffinityMask)
{
    FakeSysfs tree({"0-3\n", "4-7\n"});
    // A cgroup-style restriction: the process owns 1, 2, and 6.
    const std::vector<unsigned> allowed{1, 2, 6};
    const Topology t = Topology::fromSysfs(tree.path(), allowed);
    EXPECT_EQ(t.nodes(), 2u);
    EXPECT_EQ(t.cpus(), 3u);
    ASSERT_EQ(t.cpusOnNode(0).size(), 2u);
    EXPECT_EQ(t.cpusOnNode(0)[0], 1u);
    EXPECT_EQ(t.cpusOnNode(1)[0], 6u);
    EXPECT_EQ(t.nodeOfCpu(0), -1); // exists in sysfs, not allowed
    EXPECT_EQ(t.nodeOfCpu(3), -1);
}

TEST(Topology, DropsNodesWithNoAllowedCpu)
{
    FakeSysfs tree({"0-3\n", "4-7\n"});
    // Restriction confines the process to socket 0: node 1 must
    // not host walkers at all.
    const std::vector<unsigned> allowed{0, 1, 2, 3};
    const Topology t = Topology::fromSysfs(tree.path(), allowed);
    EXPECT_EQ(t.nodes(), 1u);
    EXPECT_EQ(t.cpus(), 4u);
    EXPECT_EQ(t.nodeOfCpu(5), -1);
}

TEST(Topology, MissingTreeFallsBackToOneNode)
{
    const Topology t =
        Topology::fromSysfs("/nonexistent/widx/node/root",
                            std::vector<unsigned>{0, 1});
    EXPECT_EQ(t.nodes(), 1u);
    EXPECT_EQ(t.cpus(), 2u);
    EXPECT_EQ(t.nodeOfCpu(1), 0);
}

TEST(Topology, EmptyTreeFallsBackToHardwareConcurrency)
{
    FakeSysfs tree({});
    const Topology t = Topology::fromSysfs(tree.path());
    EXPECT_EQ(t.nodes(), 1u);
    EXPECT_GE(t.cpus(), 1u);
}

TEST(Topology, FromNodesBuildsSyntheticTopologies)
{
    const Topology t =
        Topology::fromNodes({{0, 1}, {2, 3}, {4, 5}});
    EXPECT_EQ(t.nodes(), 3u);
    EXPECT_EQ(t.cpus(), 6u);
    EXPECT_EQ(t.nodeOfCpu(4), 2);
    // Degenerate all-empty input keeps the invariants alive.
    const Topology e = Topology::fromNodes({{}, {}});
    EXPECT_EQ(e.nodes(), 1u);
    EXPECT_EQ(e.cpus(), 1u);
}

TEST(Topology, NodeForSlotBlockDistributes)
{
    const Topology t = Topology::fromNodes({{0, 1}, {2, 3}});
    // shards/walkers >= nodes: contiguous halves.
    EXPECT_EQ(t.nodeForSlot(0, 4), 0u);
    EXPECT_EQ(t.nodeForSlot(1, 4), 0u);
    EXPECT_EQ(t.nodeForSlot(2, 4), 1u);
    EXPECT_EQ(t.nodeForSlot(3, 4), 1u);
    // Fewer slots than nodes: slots spread out.
    EXPECT_EQ(t.nodeForSlot(0, 1), 0u);
    const Topology q =
        Topology::fromNodes({{0}, {1}, {2}, {3}});
    EXPECT_EQ(q.nodeForSlot(0, 2), 0u);
    EXPECT_EQ(q.nodeForSlot(1, 2), 2u);
    // Shards and walkers distributed with the same slot count land
    // on the same node — the invariant home-set routing relies on.
    for (unsigned slots : {2u, 4u, 8u})
        for (unsigned s = 0; s < slots; ++s)
            EXPECT_LT(t.nodeForSlot(s, slots), t.nodes());
}

TEST(Topology, CpuForSlotFoldsOverUsableCpus)
{
    const Topology t = Topology::fromNodes({{0, 2}, {5, 9}});
    EXPECT_FALSE(t.folds(3));
    EXPECT_TRUE(t.folds(4));
    EXPECT_EQ(t.cpuForSlot(0), 0u);
    EXPECT_EQ(t.cpuForSlot(1), 2u);
    EXPECT_EQ(t.cpuForSlot(2), 5u);
    EXPECT_EQ(t.cpuForSlot(3), 9u);
    // Folding wraps over the usable list, not over [0, hw).
    EXPECT_EQ(t.cpuForSlot(4), 0u);
    EXPECT_EQ(t.cpuForSlot(7), 9u);
    // Within-node folding for builder/walker cycling.
    EXPECT_EQ(t.cpuOnNode(1, 0), 5u);
    EXPECT_EQ(t.cpuOnNode(1, 1), 9u);
    EXPECT_EQ(t.cpuOnNode(1, 2), 5u);
}

TEST(Topology, HostIsAlwaysUsable)
{
    const Topology &t = Topology::host();
    EXPECT_GE(t.nodes(), 1u);
    EXPECT_GE(t.cpus(), 1u);
    // Every reported CPU maps back to its node.
    for (unsigned n = 0; n < t.nodes(); ++n)
        for (unsigned cpu : t.cpusOnNode(n))
            EXPECT_EQ(t.nodeOfCpu(cpu), int(n));
    // Pinning to a usable host CPU succeeds on Linux (and pinning
    // to a CPU outside the topology is refused without a syscall).
    EXPECT_FALSE(pinThreadToCpu(t, 1u << 20));
#if defined(__linux__)
    EXPECT_TRUE(pinThreadToCpu(t, t.cpuForSlot(0)));
#endif
}

TEST(Topology, PinCurrentThreadFoldsInsteadOfFailing)
{
    // Slots far past the CPU count must fold onto usable CPUs (the
    // old cpu % hardware_concurrency helper folded onto CPUs the
    // process might not own). Smoke: both calls are best-effort and
    // must not crash or fatal.
    pinCurrentThread(0);
    pinCurrentThread(1000);
#if defined(__linux__)
    // Restore a sane state for whatever test runs next on this
    // thread: re-pin to the full usable set.
    cpu_set_t set;
    CPU_ZERO(&set);
    for (unsigned n = 0; n < Topology::host().nodes(); ++n)
        for (unsigned cpu : Topology::host().cpusOnNode(n))
            CPU_SET(cpu, &set);
    sched_setaffinity(0, sizeof(set), &set);
#endif
}
