/**
 * @file
 * Tests for the persistent index service (src/service/): sharded
 * index construction, request equivalence, admission batching, and
 * — the one that matters under TSan — concurrent clients racing the
 * submission queue and the parked walkers.
 *
 * The service's contract is strict: every request's result sequence
 * must be byte-identical to a single-threaded
 * HashIndex::probeBatch over the request's keys, for any shard
 * count, walker count, engine, coalescing pattern, and thread
 * timing. The tests compare full (i, key, payload) sequences, not
 * multisets.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/arena.hh"
#include "common/rng.hh"
#include "db/hash_join.hh"
#include "service/index_service.hh"
#include "service/open_loop.hh"
#include "workload/distributions.hh"

using namespace widx;
using namespace widx::sw;

namespace {

/** Build column with duplicates + a flat reference index. */
struct Dataset
{
    Arena arena;
    std::unique_ptr<db::Column> build;
    db::IndexSpec spec;
    std::unique_ptr<db::HashIndex> flat;
    std::vector<u64> keys;

    Dataset(u64 tuples, u64 probes, bool indirect, double zipf_theta,
            u64 seed)
    {
        Rng rng(seed);
        build = std::make_unique<db::Column>(
            "b", db::ValueKind::U64, arena, tuples);
        for (u64 k : wl::uniformKeys(tuples, tuples / 2 + 1, rng))
            build->push(k); // duplicates on purpose
        spec.buckets = tuples / 2;
        spec.indirectKeys = indirect;
        flat = std::make_unique<db::HashIndex>(spec, arena);
        flat->buildFromColumn(*build);
        keys = zipf_theta > 0.0
                   ? wl::zipfKeys(probes, tuples / 2 + 1, zipf_theta,
                                  rng)
                   : wl::uniformKeys(probes, tuples / 2 + 1, rng);
    }
};

/** The single-threaded reference sequence for a key span. */
std::vector<MatchRec>
refSequence(const db::HashIndex &idx, std::span<const u64> keys,
            bool tagged = true)
{
    std::vector<MatchRec> out;
    idx.probeBatch(
        keys,
        [&](std::size_t i, u64 key, u64 payload) {
            out.push_back({i, key, payload});
        },
        tagged);
    return out;
}

void
expectSameSequence(const std::vector<MatchRec> &got,
                   const std::vector<MatchRec> &want,
                   const char *what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t r = 0; r < got.size(); ++r) {
        ASSERT_EQ(got[r].i, want[r].i) << what << " rec " << r;
        ASSERT_EQ(got[r].key, want[r].key) << what << " rec " << r;
        ASSERT_EQ(got[r].payload, want[r].payload)
            << what << " rec " << r;
    }
}

} // namespace

// ---------------------------------------------------------------------------
// ShardedIndex
// ---------------------------------------------------------------------------

TEST(ShardedIndex, PartitionsEveryKeyExactlyOnce)
{
    Dataset d(4000, 0, false, 0.0, 3);
    for (unsigned shards : {1u, 2u, 4u, 8u}) {
        ShardedIndex sharded(*d.build, d.spec, shards);
        EXPECT_EQ(sharded.shards(), shards);
        EXPECT_EQ(sharded.entries(), d.build->size());
        u64 buckets = 0;
        for (unsigned s = 0; s < sharded.shards(); ++s)
            buckets += sharded.shard(s).numBuckets();
        EXPECT_EQ(buckets, d.flat->numBuckets());
    }
}

TEST(ShardedIndex, ShardCountClampsToPowerOfTwo)
{
    Dataset d(256, 0, false, 0.0, 4);
    ShardedIndex three(*d.build, d.spec, 3);
    EXPECT_EQ(three.shards(), 4u);
    db::IndexSpec tiny = d.spec;
    tiny.buckets = 2;
    ShardedIndex clamped(*d.build, tiny, 64);
    EXPECT_EQ(clamped.shards(), 2u); // can't out-shard the buckets
}

TEST(ShardedIndex, ProbeSurfaceHasNoFalseNegatives)
{
    Dataset d(4000, 0, false, 0.0, 5);
    ShardedIndex sharded(*d.build, d.spec, 4);
    EXPECT_EQ(sharded.flatIndex(), nullptr);
    // Every inserted key must pass the shard-resolved tag check and
    // be reachable through the shard-resolved bucket head.
    for (RowId r = 0; r < d.build->size(); ++r) {
        const u64 key = d.build->at(r);
        const u64 h = d.flat->hashKey(key);
        ASSERT_TRUE(sharded.tagMayMatchHash(h)) << "key " << key;
        bool found = false;
        for (const ShardedIndex::Node *n = sharded.bucketHeadFor(h);
             n && !found; n = n->next)
            found = sharded.nodeKey(*n) == key;
        ASSERT_TRUE(found) << "key " << key;
    }
}

TEST(ShardedIndex, FirstTouchBuildMatchesSequentialBuild)
{
    Dataset d(4000, 2000, true, 0.0, 6);
    ShardedIndex seq(*d.build, d.spec, 4, NumaPolicy::None);
    ShardedIndex par(*d.build, d.spec, 4, NumaPolicy::FirstTouch,
                     true);
    EXPECT_EQ(par.entries(), seq.entries());
    for (unsigned s = 0; s < 4; ++s) {
        EXPECT_EQ(par.shard(s).entries(), seq.shard(s).entries());
        for (u64 key : d.keys)
            EXPECT_EQ(par.shard(s).lookup(key),
                      seq.shard(s).lookup(key));
    }
}

TEST(ShardedIndex, NodeBoundBuildMatchesSequentialBuild)
{
    // A synthetic 2-node topology: the build must pin each shard's
    // builder toward its target node (best effort — the fake CPUs
    // may not exist on the runner) and still produce exactly the
    // sequential index.
    const Topology topo = Topology::fromNodes({{0}, {1}});
    Dataset d(4000, 2000, false, 0.0, 6);
    ShardedIndex seq(*d.build, d.spec, 4, NumaPolicy::None);
    ShardedIndex bound(*d.build, d.spec, 4, NumaPolicy::NodeBound,
                       false, &topo);
    EXPECT_EQ(bound.entries(), seq.entries());
    for (unsigned s = 0; s < 4; ++s) {
        EXPECT_EQ(bound.shard(s).entries(),
                  seq.shard(s).entries());
        for (u64 key : d.keys)
            EXPECT_EQ(bound.shard(s).lookup(key),
                      seq.shard(s).lookup(key));
    }
    // Block distribution over the injected tree: the low shard half
    // targets node 0, the high half node 1.
    EXPECT_EQ(bound.shardNode(0), 0u);
    EXPECT_EQ(bound.shardNode(1), 0u);
    EXPECT_EQ(bound.shardNode(2), 1u);
    EXPECT_EQ(bound.shardNode(3), 1u);
}

// ---------------------------------------------------------------------------
// IndexService: request equivalence
// ---------------------------------------------------------------------------

struct ServiceCase
{
    unsigned shards;
    unsigned walkers;
    WalkerEngine engine;
    bool indirect;
    double zipf;
    unsigned batch;
    bool tagged;
    bool affine = false;
    bool coalesce = true;
};

/** A synthetic 2-node topology shared by the routing cases, so the
 *  multi-node placement and home-set code paths run even on
 *  single-node (and single-core) runners. The fake CPUs may not
 *  exist on the host; pinning is best-effort and stays off here. */
const Topology &
fakeTwoNode()
{
    static const Topology topo =
        Topology::fromNodes({{0, 1}, {2, 3}});
    return topo;
}

class ServiceEquivalence
    : public ::testing::TestWithParam<ServiceCase>
{
};

TEST_P(ServiceEquivalence, ByteIdenticalToProbeBatch)
{
    const ServiceCase &c = GetParam();
    Dataset d(2000, 5000, c.indirect, c.zipf, 31 + c.walkers);
    const auto want = refSequence(*d.flat, d.keys, c.tagged);

    ServiceConfig cfg;
    cfg.shards = c.shards;
    cfg.walkers = c.walkers;
    cfg.engine = c.engine;
    cfg.pipeline.batch = c.batch;
    cfg.pipeline.tagged = c.tagged;
    cfg.affineRouting = c.affine;
    cfg.coalesceTails = c.coalesce;
    if (c.affine)
        cfg.topology = &fakeTwoNode();
    IndexService service(*d.build, d.spec, cfg);
    EXPECT_EQ(service.affineRouting(), c.affine && c.shards > 1);

    ServiceResult probe = service.probe(d.keys);
    EXPECT_EQ(probe.matches, want.size());
    expectSameSequence(probe.recs, want, "probe");

    EXPECT_EQ(service.count(d.keys), want.size());

    ServiceResult join = service.join(d.keys);
    expectSameSequence(join.recs, want, "join");

    // Async path, same sweep: the keys sliced across many
    // submitAsync calls (deliberately uneven slices) must
    // reassemble byte-identically through a CompletionQueue — the
    // blocking and async routes share one completion path, so any
    // divergence here is a sink bug, not a drain bug.
    {
        auto cq = std::make_shared<CompletionQueue>();
        const std::size_t slice = 257;
        std::size_t nSlices = 0;
        std::vector<std::size_t> sliceBase;
        for (std::size_t base = 0; base < d.keys.size();
             base += slice, ++nSlices) {
            sliceBase.push_back(base);
            service.submitAsync(
                RequestKind::Probe,
                {d.keys.data() + base,
                 std::min(slice, d.keys.size() - base)},
                {}, cq, nSlices);
        }
        std::vector<Completion> done;
        for (int tries = 0;
             done.size() < nSlices && tries < 200; ++tries)
            cq->reap(done, nSlices,
                     std::chrono::milliseconds(100));
        ASSERT_EQ(done.size(), nSlices);
        std::vector<std::vector<MatchRec>> bySlice(nSlices);
        for (Completion &comp : done) {
            ASSERT_LT(comp.tag, nSlices);
            EXPECT_EQ(comp.result.status, Status::Ok);
            bySlice[comp.tag] = std::move(comp.result.recs);
        }
        std::vector<MatchRec> got;
        for (std::size_t s = 0; s < nSlices; ++s)
            for (const MatchRec &r : bySlice[s])
                got.push_back(
                    {r.i + sliceBase[s], r.key, r.payload});
        expectSameSequence(got, want, "async slices");
    }

    if (service.affineRouting()) {
        // Every drained window was a single-shard affine window,
        // and every shard has exactly one home walker.
        const ServiceStats stats = service.stats();
        EXPECT_EQ(stats.affineWindows, stats.windows);
        std::vector<unsigned> owners(service.shards(), 0);
        for (unsigned w = 0; w < service.walkers(); ++w)
            for (unsigned s : service.homeShards(w))
                ++owners[s];
        for (unsigned s = 0; s < service.shards(); ++s)
            EXPECT_EQ(owners[s], 1u) << "shard " << s;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ServiceEquivalence,
    ::testing::Values(
        // Walker ladder, flat (single shard).
        ServiceCase{1, 1, WalkerEngine::Amac, false, 0.0, 64, true},
        ServiceCase{1, 2, WalkerEngine::Amac, false, 0.0, 64, true},
        ServiceCase{1, 4, WalkerEngine::Amac, false, 0.0, 64, true},
        // Shard ladder at fixed walkers.
        ServiceCase{2, 2, WalkerEngine::Amac, false, 0.0, 64, true},
        ServiceCase{4, 4, WalkerEngine::Amac, false, 0.0, 64, true},
        ServiceCase{8, 2, WalkerEngine::Amac, false, 0.0, 64, true},
        // Coroutine engine, both sharded and flat.
        ServiceCase{1, 2, WalkerEngine::Coro, false, 0.0, 64, true},
        ServiceCase{4, 2, WalkerEngine::Coro, false, 0.0, 64, true},
        // Tag modes, chunk sizes (incl. inline batch=0 -> default
        // chunking), layouts, skew.
        ServiceCase{4, 4, WalkerEngine::Amac, false, 0.0, 64, false},
        ServiceCase{4, 4, WalkerEngine::Amac, false, 0.0, 16, true},
        ServiceCase{2, 4, WalkerEngine::Amac, false, 0.0, 0, true},
        ServiceCase{4, 4, WalkerEngine::Amac, true, 0.0, 64, true},
        ServiceCase{4, 4, WalkerEngine::Amac, false, 0.8, 64, true},
        ServiceCase{4, 2, WalkerEngine::Coro, true, 0.99, 32,
                    false},
        // Shard-affine routing sweep (fake 2-node topology):
        // shards x walkers x engine x tag x chunk x layout x skew,
        // with the routing-off twin of each shape above for the
        // on/off acceptance comparison.
        ServiceCase{2, 2, WalkerEngine::Amac, false, 0.0, 64, true,
                    true},
        ServiceCase{4, 4, WalkerEngine::Amac, false, 0.0, 64, true,
                    true},
        ServiceCase{8, 2, WalkerEngine::Amac, false, 0.0, 64, true,
                    true},
        ServiceCase{4, 1, WalkerEngine::Amac, false, 0.0, 64, true,
                    true},
        ServiceCase{2, 4, WalkerEngine::Coro, false, 0.0, 64, true,
                    true},
        ServiceCase{4, 2, WalkerEngine::Coro, true, 0.99, 32, false,
                    true},
        ServiceCase{4, 4, WalkerEngine::Amac, false, 0.0, 16, false,
                    true},
        ServiceCase{4, 4, WalkerEngine::Amac, false, 0.8, 0, true,
                    true},
        // affine flag on a single shard degrades to the flat path.
        ServiceCase{1, 2, WalkerEngine::Amac, false, 0.0, 64, true,
                    true},
        // Coalescing off: tails seal their own windows (shared and
        // affine admission paths) — results must not care.
        ServiceCase{1, 4, WalkerEngine::Amac, false, 0.0, 64, true,
                    false, false},
        ServiceCase{4, 2, WalkerEngine::Coro, false, 0.0, 16, true,
                    false, false},
        ServiceCase{4, 4, WalkerEngine::Amac, false, 0.6, 64, true,
                    true, false}));

TEST(IndexService, WrapsAnExistingIndex)
{
    Dataset d(2000, 4000, false, 0.6, 7);
    const auto want = refSequence(*d.flat, d.keys);
    ServiceConfig cfg;
    cfg.walkers = 4;
    IndexService service(*d.flat, cfg);
    EXPECT_EQ(service.shards(), 1u);
    ServiceResult got = service.probe(d.keys);
    expectSameSequence(got.recs, want, "wrapped");
}

TEST(IndexService, EmptyAndTinyRequests)
{
    Dataset d(256, 5, false, 0.0, 8);
    ServiceConfig cfg;
    cfg.walkers = 2;
    IndexService service(*d.flat, cfg);
    EXPECT_EQ(service.count({}), 0u);
    ResultTicket empty =
        service.submit(RequestKind::Probe, std::span<const u64>{});
    EXPECT_TRUE(empty.valid());
    EXPECT_EQ(empty.get().matches, 0u);
    const auto want = refSequence(*d.flat, d.keys);
    expectSameSequence(service.probe(d.keys).recs, want, "tiny");
}

TEST(IndexService, ServiceWithNoRequestsTearsDownCleanly)
{
    Dataset d(128, 0, false, 0.0, 9);
    ServiceConfig cfg;
    cfg.walkers = 4;
    cfg.pinWalkers = true;
    IndexService service(*d.flat, cfg);
    EXPECT_EQ(service.walkers(), 4u);
    // Destructor parks -> joins with zero traffic.
}

TEST(IndexService, ResultsIndependentOfWalkersShardsAndRouting)
{
    Dataset d(4000, 20000, false, 0.6, 11);
    std::vector<MatchRec> first;
    bool have_first = false;
    for (unsigned shards : {1u, 4u})
        for (unsigned walkers : {1u, 2u, 4u})
            for (bool affine : {false, true}) {
                ServiceConfig cfg;
                cfg.shards = shards;
                cfg.walkers = walkers;
                cfg.affineRouting = affine;
                if (affine)
                    cfg.topology = &fakeTwoNode();
                IndexService service(*d.build, d.spec, cfg);
                ServiceResult got = service.probe(d.keys);
                if (!have_first) {
                    first = std::move(got.recs);
                    have_first = true;
                    continue;
                }
                expectSameSequence(got.recs, first,
                                   "cross-config");
            }
}

TEST(IndexService, CoalescesSmallRequestsIntoSharedWindows)
{
    Dataset d(2000, 6000, false, 0.0, 13);
    ServiceConfig cfg;
    cfg.walkers = 1;
    cfg.pipeline.batch = 64;
    IndexService service(*d.flat, cfg);

    // Occupy the lone walker with a multi-chunk request, then fire
    // many sub-chunk requests before waiting on any ticket: their
    // tails coalesce into shared dispatch windows while the walker
    // works through the big request's sealed chunks.
    ResultTicket big = service.submit(
        RequestKind::Count, std::span<const u64>(d.keys));
    std::vector<ResultTicket> tickets;
    std::vector<std::span<const u64>> spans;
    for (std::size_t base = 0; base + 7 <= d.keys.size() &&
                               tickets.size() < 200;
         base += 7) {
        spans.push_back(std::span<const u64>(d.keys).subspan(base, 7));
        tickets.push_back(
            service.submit(RequestKind::Probe, spans.back()));
    }
    EXPECT_EQ(big.get().matches,
              refSequence(*d.flat, d.keys).size());
    for (std::size_t t = 0; t < tickets.size(); ++t) {
        const auto want = refSequence(*d.flat, spans[t]);
        ServiceResult got = tickets[t].get();
        expectSameSequence(got.recs, want, "coalesced");
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests, tickets.size() + 1);
    EXPECT_GT(stats.coalescedWindows, 0u);
}

TEST(IndexService, CoalescingOffNeverSharesWindows)
{
    Dataset d(2000, 6000, false, 0.0, 13);
    for (bool affine : {false, true}) {
        ServiceConfig cfg;
        cfg.shards = affine ? 4 : 1;
        cfg.walkers = 1;
        cfg.affineRouting = affine;
        if (affine)
            cfg.topology = &fakeTwoNode();
        cfg.pipeline.batch = 64;
        cfg.coalesceTails = false;
        IndexService service(*d.build, d.spec, cfg);

        // The exact shape that forces coalescing when it is on
        // (busy walker + 200 concurrent sub-chunk requests): with
        // coalescing off every tail must seal its own window.
        ResultTicket big = service.submit(
            RequestKind::Count, std::span<const u64>(d.keys));
        std::vector<ResultTicket> tickets;
        std::vector<std::span<const u64>> spans;
        for (std::size_t base = 0; base + 7 <= d.keys.size() &&
                                   tickets.size() < 200;
             base += 7) {
            spans.push_back(
                std::span<const u64>(d.keys).subspan(base, 7));
            tickets.push_back(
                service.submit(RequestKind::Probe, spans.back()));
        }
        EXPECT_EQ(big.get().matches,
                  refSequence(*d.flat, d.keys).size());
        for (std::size_t t = 0; t < tickets.size(); ++t) {
            const auto want = refSequence(*d.flat, spans[t]);
            ServiceResult got = tickets[t].get();
            expectSameSequence(got.recs, want, "uncoalesced");
        }
        const ServiceStats stats = service.stats();
        EXPECT_EQ(stats.coalescedWindows, 0u)
            << (affine ? "affine" : "shared");
    }
}

// ---------------------------------------------------------------------------
// Bounded waits
// ---------------------------------------------------------------------------

TEST(IndexService, WaitForBoundsTheWait)
{
    using namespace std::chrono_literals;
    Dataset d(1u << 16, 1u << 20, false, 0.0, 29);
    ServiceConfig cfg;
    cfg.walkers = 1;
    IndexService service(*d.flat, cfg);

    // A 1M-key request cannot complete in the nanoseconds between
    // submit and a zero-timeout poll: the poll must time out and
    // leave the ticket valid.
    ResultTicket t =
        service.submit(RequestKind::Count, d.keys);
    EXPECT_EQ(t.waitFor(0ns), WaitStatus::Timeout);
    EXPECT_TRUE(t.valid());

    // A generous bound must observe completion; Ready is sticky and
    // get() then returns the full result without blocking.
    EXPECT_EQ(t.waitFor(10min), WaitStatus::Ready);
    EXPECT_TRUE(t.valid());
    EXPECT_EQ(t.waitFor(0ns), WaitStatus::Ready);
    const u64 want = refSequence(*d.flat, d.keys).size();
    EXPECT_EQ(t.get().matches, want);
    EXPECT_FALSE(t.valid());
}

// ---------------------------------------------------------------------------
// Open-loop client
// ---------------------------------------------------------------------------

TEST(IndexService, OpenLoopAccountsEveryArrival)
{
    Dataset d(2000, 6000, false, 0.0, 43);
    ServiceConfig cfg;
    cfg.walkers = 1;
    IndexService service(*d.flat, cfg);

    OpenLoopOptions opt;
    opt.ratePerSec = 50000;
    opt.requests = 500;
    opt.keysPerRequest = 8;
    opt.arrivals = ArrivalProcess::Poisson;
    const OpenLoopReport rep = runOpenLoop(service, d.keys, opt);

    // Every scheduled arrival is either submitted or shed at the
    // client cap; every submission ends in exactly one status
    // bucket (or is abandoned as timed-out); Ok completions are
    // exactly the latency samples.
    EXPECT_EQ(rep.scheduled, opt.requests);
    EXPECT_EQ(rep.submitted + rep.shedClientCap, rep.scheduled);
    EXPECT_EQ(rep.completed + rep.rejected + rep.expired +
                  rep.timedOut,
              rep.submitted);
    EXPECT_EQ(rep.latency.count, rep.completed);
    EXPECT_EQ(rep.hist.count(), rep.completed);
    EXPECT_GT(rep.completed, 0u);
    EXPECT_LE(rep.latency.p50Ns, rep.latency.p99Ns);
    EXPECT_LE(rep.latency.p99Ns, rep.latency.maxNs);
    EXPECT_GT(rep.elapsedSec, 0.0);

    // A tiny in-flight cap on an overdriven single walker must
    // shed rather than queue without bound — and still account for
    // every arrival.
    OpenLoopOptions tight = opt;
    tight.ratePerSec = 500000;
    tight.maxInFlight = 1;
    tight.seed = 2;
    const OpenLoopReport capped =
        runOpenLoop(service, d.keys, tight);
    EXPECT_EQ(capped.submitted + capped.shedClientCap,
              capped.scheduled);
    EXPECT_EQ(capped.completed + capped.rejected +
                  capped.expired + capped.timedOut,
              capped.submitted);
    EXPECT_EQ(capped.latency.count, capped.completed);
}

// ---------------------------------------------------------------------------
// Latency accounting
// ---------------------------------------------------------------------------

TEST(IndexService, LatencyComponentsAddUpExactly)
{
    Dataset d(2000, 6000, false, 0.0, 37);
    ServiceConfig cfg;
    cfg.walkers = 2;
    cfg.pipeline.batch = 64;
    IndexService service(*d.flat, cfg);

    // Mixed traffic: every kind, sub-chunk through multi-chunk
    // sizes, plus an empty request (no queue-wait by definition).
    const std::size_t sizes[] = {0, 1, 7, 64, 200, 4096};
    u64 perKind = 0;
    for (std::size_t n : sizes) {
        service.count(std::span<const u64>(d.keys).first(n));
        service.probe(std::span<const u64>(d.keys).first(n));
        service.join(std::span<const u64>(d.keys).first(n));
        ++perKind;
    }

    const ServiceStats s = service.stats();
    for (RequestKind k : {RequestKind::Count, RequestKind::Probe,
                          RequestKind::Join}) {
        const KindLatency &kl = s.latencyFor(k);
        // Every request is counted once in each component.
        EXPECT_EQ(kl.endToEnd.count, perKind);
        EXPECT_EQ(kl.queueWait.count, perKind);
        EXPECT_EQ(kl.drainTime.count, perKind);
        // The components are measured with the *same* clock reads,
        // so their sums add up to end-to-end to the nanosecond —
        // coalescing hold is attributable, not smeared.
        EXPECT_EQ(kl.queueWait.sumNs + kl.drainTime.sumNs,
                  kl.endToEnd.sumNs);
        // Percentile ladder sanity.
        EXPECT_LE(kl.endToEnd.p50Ns, kl.endToEnd.p90Ns);
        EXPECT_LE(kl.endToEnd.p90Ns, kl.endToEnd.p99Ns);
        EXPECT_LE(kl.endToEnd.p99Ns, kl.endToEnd.p999Ns);
        EXPECT_LE(kl.endToEnd.p999Ns, kl.endToEnd.maxNs);
        EXPECT_GT(kl.endToEnd.maxNs, 0u);
        // Components never exceed the whole.
        EXPECT_LE(kl.queueWait.maxNs, kl.endToEnd.maxNs);
        EXPECT_LE(kl.drainTime.maxNs, kl.endToEnd.maxNs);
    }

    // Completion timestamps are stamped and monotone per client.
    ServiceResult a = service.probe(
        std::span<const u64>(d.keys).first(64));
    ServiceResult b = service.probe(
        std::span<const u64>(d.keys).first(64));
    EXPECT_GT(a.completedAtNs, 0u);
    EXPECT_GE(b.completedAtNs, a.completedAtNs);

    // resetLatencyStats zeroes the histograms but not the traffic
    // counters.
    service.resetLatencyStats();
    const ServiceStats after = service.stats();
    EXPECT_EQ(after.latencyFor(RequestKind::Probe).endToEnd.count,
              0u);
    EXPECT_GT(after.requests, 0u);
}

TEST(IndexService, LatencyRecordingCanBeDisabled)
{
    Dataset d(512, 256, false, 0.0, 41);
    ServiceConfig cfg;
    cfg.recordLatency = false;
    IndexService service(*d.flat, cfg);
    ServiceResult r = service.probe(d.keys);
    EXPECT_GT(r.completedAtNs, 0u); // completion stamp stays
    const ServiceStats s = service.stats();
    EXPECT_EQ(s.latencyFor(RequestKind::Probe).endToEnd.count, 0u);
    EXPECT_EQ(s.latencyFor(RequestKind::Probe).endToEnd.maxNs, 0u);
}

// ---------------------------------------------------------------------------
// Shard-affine routing
// ---------------------------------------------------------------------------

TEST(IndexService, AffineScattersKeysIntoPerShardWindows)
{
    Dataset d(4000, 4096, false, 0.0, 19);
    ServiceConfig cfg;
    cfg.shards = 4;
    cfg.walkers = 2;
    cfg.affineRouting = true;
    cfg.topology = &fakeTwoNode();
    cfg.pipeline.batch = 64;
    IndexService service(*d.build, d.spec, cfg);
    ASSERT_TRUE(service.affineRouting());

    const auto want = refSequence(*d.flat, d.keys);
    ServiceResult got = service.probe(d.keys);
    expectSameSequence(got.recs, want, "affine-scatter");

    const ServiceStats stats = service.stats();
    // Every window drained was a single-shard window, and a 4096-key
    // uniform request fans out across more windows than the flat
    // chunking would use (keys scatter by hash range).
    EXPECT_EQ(stats.affineWindows, stats.windows);
    EXPECT_GE(stats.windows, u64(d.keys.size() / 64));
}

TEST(IndexService, AffineCoalescesSmallRequestsPerShard)
{
    Dataset d(2000, 6000, false, 0.0, 13);
    ServiceConfig cfg;
    cfg.shards = 4;
    cfg.walkers = 1;
    cfg.affineRouting = true;
    cfg.topology = &fakeTwoNode();
    cfg.pipeline.batch = 64;
    IndexService service(*d.build, d.spec, cfg);

    // Occupy the lone walker, then fire many sub-chunk requests
    // before waiting on any ticket: their keys scatter into the
    // per-shard open windows, where tails from different requests
    // coalesce (a 7-key request's shard-s keys share a window with
    // other requests' shard-s keys).
    ResultTicket big = service.submit(
        RequestKind::Count, std::span<const u64>(d.keys));
    std::vector<ResultTicket> tickets;
    std::vector<std::span<const u64>> spans;
    for (std::size_t base = 0; base + 7 <= d.keys.size() &&
                               tickets.size() < 200;
         base += 7) {
        spans.push_back(
            std::span<const u64>(d.keys).subspan(base, 7));
        tickets.push_back(
            service.submit(RequestKind::Probe, spans.back()));
    }
    EXPECT_EQ(big.get().matches,
              refSequence(*d.flat, d.keys).size());
    for (std::size_t t = 0; t < tickets.size(); ++t) {
        const auto want = refSequence(*d.flat, spans[t]);
        ServiceResult got = tickets[t].get();
        expectSameSequence(got.recs, want, "affine-coalesced");
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests, tickets.size() + 1);
    EXPECT_GT(stats.coalescedWindows, 0u);
    EXPECT_EQ(stats.affineWindows, stats.windows);
}

TEST(IndexService, SkewedShardTrafficIsServedBySteal)
{
    // All probe keys target a single shard (found by hashing), so
    // only that shard's home walker has home work; with several
    // walkers the others may steal, and either way every request
    // must complete exactly (no idle-pool livelock on skew).
    Dataset d(4000, 0, false, 0.0, 21);
    ServiceConfig cfg;
    cfg.shards = 4;
    cfg.walkers = 4;
    cfg.affineRouting = true;
    cfg.topology = &fakeTwoNode();
    cfg.pipeline.batch = 64;
    IndexService service(*d.build, d.spec, cfg);
    ASSERT_TRUE(service.affineRouting());

    const ShardedIndex &idx = service.index();
    std::vector<u64> skewed;
    for (u64 k = 1; skewed.size() < 4000 && k < 200000; ++k)
        if (idx.shardOf(idx.shard(0).hashKey(k)) == 0)
            skewed.push_back(k);
    ASSERT_GE(skewed.size(), 1000u);

    const auto want = refSequence(*d.flat, skewed);
    ServiceResult got = service.probe(skewed);
    expectSameSequence(got.recs, want, "skewed");

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.affineWindows, stats.windows);
    // stolenWindows is timing-dependent (a fast home walker can
    // drain everything); the accounting must never exceed the
    // window count.
    EXPECT_LE(stats.stolenWindows, stats.windows);
}

// ---------------------------------------------------------------------------
// Concurrent clients (the TSan target)
// ---------------------------------------------------------------------------

/** Multi-threaded submitter stress: concurrent clients fire mixed
 *  probe/count/join requests — uniform and zipf keys, sub-chunk
 *  through multi-chunk sizes — and each verifies its results
 *  against the single-threaded reference. Raced under the CI TSan
 *  job (ctest PROCESSORS is set in CMakeLists.txt); run twice, once
 *  per routing mode, so the scatter path and the work-stealing
 *  claim race too. */
void
concurrentClientsStress(bool affine)
{
    Dataset d(8192, 0, false, 0.0, 17);
    ServiceConfig cfg;
    cfg.shards = 4;
    cfg.walkers = 4;
    cfg.pipeline.batch = 64;
    cfg.affineRouting = affine;
    if (affine)
        cfg.topology = &fakeTwoNode();
    IndexService service(*d.build, d.spec, cfg);
    ASSERT_EQ(service.affineRouting(), affine);

    constexpr unsigned kClients = 6;
    constexpr unsigned kRequests = 24;
    std::vector<std::thread> clients;
    std::vector<std::string> failures(kClients);
    for (unsigned cl = 0; cl < kClients; ++cl)
        clients.emplace_back([&, cl] {
            Rng rng(100 + cl);
            for (unsigned r = 0; r < kRequests; ++r) {
                // Sizes: mostly tails, some multi-chunk, a couple
                // of big spans per client.
                const u64 pick = rng.below(10);
                const u64 n = pick < 6   ? 1 + rng.below(17)
                              : pick < 9 ? 65 + rng.below(400)
                                         : 5000;
                std::vector<u64> keys =
                    r % 2 ? wl::zipfKeys(n, 4097, 0.8, rng)
                          : wl::uniformKeys(n, 4097, rng);
                const auto kind = RequestKind(r % 3);
                ServiceResult got =
                    service.submit(kind, keys).get();
                const auto want = refSequence(*d.flat, keys);
                if (got.matches != want.size()) {
                    failures[cl] = "match count mismatch";
                    return;
                }
                if (kind == RequestKind::Count)
                    continue;
                if (got.recs.size() != want.size()) {
                    failures[cl] = "rec count mismatch";
                    return;
                }
                for (std::size_t i = 0; i < want.size(); ++i)
                    if (got.recs[i].i != want[i].i ||
                        got.recs[i].key != want[i].key ||
                        got.recs[i].payload != want[i].payload) {
                        failures[cl] = "sequence mismatch";
                        return;
                    }
            }
        });
    for (auto &t : clients)
        t.join();
    for (unsigned cl = 0; cl < kClients; ++cl)
        EXPECT_EQ(failures[cl], "") << "client " << cl;
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests, u64(kClients) * kRequests);
    if (affine) {
        EXPECT_EQ(stats.affineWindows, stats.windows);
    }
}

TEST(IndexService, ConcurrentClientsStress)
{
    concurrentClientsStress(false);
}

TEST(IndexService, ConcurrentClientsStressAffine)
{
    concurrentClientsStress(true);
}

// ---------------------------------------------------------------------------
// db-layer integration
// ---------------------------------------------------------------------------

TEST(IndexService, DbProbeAllRidesALongLivedService)
{
    Rng rng(23);
    Arena arena;
    db::Column build("b", db::ValueKind::U64, arena, 2048);
    db::Column probe("p", db::ValueKind::U32, arena, 9000);
    for (int i = 0; i < 2048; ++i)
        build.push(1 + rng.below(1024));
    for (int i = 0; i < 9000; ++i)
        probe.push(1 + rng.below(2048));

    db::IndexSpec spec;
    spec.buckets = 2048;
    db::HashIndex idx(spec, arena);
    idx.buildFromColumn(build);
    db::JoinResult ref = db::probeAll(idx, probe, true);

    ServiceConfig cfg;
    cfg.walkers = 3;
    IndexService service(idx, cfg);
    for (int round = 0; round < 3; ++round) {
        db::JoinResult got = db::probeAll(service, probe, true);
        ASSERT_EQ(got.status, Status::Ok);
        ASSERT_EQ(got.matches, ref.matches);
        ASSERT_EQ(got.pairs.size(), ref.pairs.size());
        for (std::size_t i = 0; i < ref.pairs.size(); ++i) {
            ASSERT_EQ(got.pairs[i].buildRow, ref.pairs[i].buildRow);
            ASSERT_EQ(got.pairs[i].probeRow, ref.pairs[i].probeRow);
        }
        ASSERT_EQ(db::probeAll(service, probe, false).matches,
                  ref.matches);
    }
}

TEST(IndexService, DbProbeAllHonorsBoundedAdmission)
{
    // Regression: the async slice fan-out must not silently lose
    // the slices a bounded admission queue sheds. With
    // maxQueuedKeys below one 4096-key slice, a slice is only
    // admitted on a drained queue (the overshoot-by-one-request
    // rule), so nearly every slice rides the Rejected -> resubmit
    // path — and the join must still come back whole, Ok, and
    // byte-identical to the flat reference.
    Rng rng(37);
    Arena arena;
    db::Column build("b", db::ValueKind::U64, arena, 2048);
    db::Column probe("p", db::ValueKind::U64, arena, 40000);
    for (int i = 0; i < 2048; ++i)
        build.push(1 + rng.below(1024));
    for (int i = 0; i < 40000; ++i)
        probe.push(1 + rng.below(2048));

    db::IndexSpec spec;
    spec.buckets = 2048;
    db::HashIndex idx(spec, arena);
    idx.buildFromColumn(build);
    db::JoinResult ref = db::probeAll(idx, probe, true);

    ServiceConfig cfg;
    cfg.walkers = 1;
    cfg.maxQueuedKeys = 2048; // below one slice: shed-heavy
    IndexService service(idx, cfg);
    db::JoinResult got = db::probeAll(service, probe, true);
    ASSERT_EQ(got.status, Status::Ok);
    ASSERT_EQ(got.matches, ref.matches);
    ASSERT_EQ(got.pairs.size(), ref.pairs.size());
    for (std::size_t i = 0; i < ref.pairs.size(); ++i) {
        ASSERT_EQ(got.pairs[i].buildRow, ref.pairs[i].buildRow);
        ASSERT_EQ(got.pairs[i].probeRow, ref.pairs[i].probeRow);
    }
    // The bound actually bit: at least one slice was shed and
    // resubmitted (10 slices against a 2048-key budget).
    EXPECT_GT(service.stats().rejected, 0u);

    db::JoinResult count = db::probeAll(service, probe, false);
    ASSERT_EQ(count.status, Status::Ok);
    ASSERT_EQ(count.matches, ref.matches);
}

TEST(IndexService, DbProbeAllSurfacesCancelledAfterStop)
{
    // A stopped service turns submissions into fast Cancelled
    // completions; probeAll must report that on JoinResult::status
    // (with no pairs) instead of returning a silently-empty Ok
    // join — and must not hang resubmitting into a dead service.
    Rng rng(41);
    Arena arena;
    db::Column build("b", db::ValueKind::U64, arena, 1024);
    db::Column probe("p", db::ValueKind::U64, arena, 9000);
    for (int i = 0; i < 1024; ++i)
        build.push(1 + rng.below(512));
    for (int i = 0; i < 9000; ++i)
        probe.push(1 + rng.below(1024));

    db::IndexSpec spec;
    spec.buckets = 1024;
    db::HashIndex idx(spec, arena);
    idx.buildFromColumn(build);

    ServiceConfig cfg;
    cfg.walkers = 1;
    IndexService service(idx, cfg);
    service.stop();

    db::JoinResult got = db::probeAll(service, probe, true);
    EXPECT_EQ(got.status, Status::Cancelled);
    EXPECT_TRUE(got.pairs.empty());
    EXPECT_EQ(db::probeAll(service, probe, false).status,
              Status::Cancelled);
}

// ---------------------------------------------------------------------------
// Adaptive tagging through the service
// ---------------------------------------------------------------------------

TEST(IndexService, AdaptiveTaggingTracksTrafficShape)
{
    Rng rng(29);
    Arena arena;
    db::Column build("b", db::ValueKind::U64, arena, 4096);
    for (u64 k : wl::shuffledDenseKeys(4096, rng))
        build.push(k);
    db::IndexSpec spec;
    spec.buckets = 4096;

    ServiceConfig cfg;
    cfg.pipeline.adaptiveTags = true;
    IndexService service(build, spec, cfg);

    // Phase 1 — hit-dominated traffic: nearly every probe finds its
    // key, the filter rejects almost nothing, and adaptive mode
    // turns it off once the sample is in.
    std::vector<u64> hits = wl::uniformKeys(20000, 4096, rng);
    service.count(hits);
    EXPECT_GE(service.index().tagStats().keys(),
              db::TagFilterStats::kMinSampleKeys);
    EXPECT_LT(service.index().tagStats().rejectRate(), 0.05);
    EXPECT_FALSE(service.index().taggedWorthwhile(true));

    // Phase 2 — the same service's traffic turns miss-heavy. The
    // filter is off, but the periodic re-sampling windows (1 in 32)
    // keep feeding the stats, so the reject rate climbs past the
    // threshold and the recommendation swings back on.
    std::vector<u64> misses = wl::uniformKeys(80000, 4096, rng);
    for (u64 &k : misses)
        k += 4096;
    service.count(misses);
    EXPECT_GT(service.index().tagStats().rejectRate(), 0.05);
    EXPECT_TRUE(service.index().taggedWorthwhile(false));
}

// ---------------------------------------------------------------------------
// Deadlines and backpressure
// ---------------------------------------------------------------------------

TEST(IndexService, ExpiredDeadlineFailsFastWithoutDraining)
{
    using namespace std::chrono_literals;
    Dataset d(2000, 2000, false, 0.0, 47);
    ServiceConfig cfg;
    cfg.walkers = 1;
    IndexService service(*d.flat, cfg);

    // A deadline already in the past must complete at submit —
    // Ready on a zero-timeout poll, no partial results, and the
    // latency board untouched (fast-failed requests would poison
    // the percentiles the admission controller steers by).
    SubmitOptions past;
    past.deadlineNs = 1;
    ResultTicket t =
        service.submit(RequestKind::Probe, d.keys, past);
    EXPECT_EQ(t.waitFor(0ns), WaitStatus::Ready);
    const ServiceResult r = t.get();
    EXPECT_EQ(r.status, Status::DeadlineExceeded);
    EXPECT_TRUE(r.recs.empty());
    EXPECT_EQ(r.matches, 0u);

    // A generous deadline changes nothing about a healthy request.
    SubmitOptions future;
    future.deadlineNs = monotonicNowNs() + u64(60e9);
    const std::span<const u64> keys{d.keys.data(), 256};
    ResultTicket ok =
        service.submit(RequestKind::Probe, keys, future);
    const ServiceResult rok = ok.get();
    EXPECT_EQ(rok.status, Status::Ok);
    expectSameSequence(rok.recs, refSequence(*d.flat, keys),
                       "deadline-ok request");

    const ServiceStats s = service.stats();
    EXPECT_EQ(s.expired, 1u);
    EXPECT_EQ(s.completedOk, 1u);
    EXPECT_EQ(s.latencyFor(RequestKind::Probe).endToEnd.count, 1u);
    EXPECT_EQ(statusName(Status::DeadlineExceeded),
              std::string("DeadlineExceeded"));
}

namespace {

/** Shared body for the backpressure tests: park a huge request so
 *  the admission queue sits far over the bound, then show the next
 *  submission bounces with Status::Rejected — and that admission
 *  reopens once the backlog drains. The race with the walker (it
 *  could drain the whole backlog if this thread is descheduled
 *  between the two submits) is closed with a bounded retry: the
 *  assertion is that rejection *happens* under a standing backlog,
 *  not that any particular interleaving occurs. */
void
expectBackpressureBounces(IndexService &service, Dataset &d)
{
    using namespace std::chrono_literals;
    bool sawReject = false;
    const u64 want = refSequence(*d.flat, d.keys).size();
    for (int attempt = 0; attempt < 5 && !sawReject; ++attempt) {
        ResultTicket big =
            service.submit(RequestKind::Count, d.keys);
        ResultTicket bounced = service.submit(
            RequestKind::Count, {d.keys.data(), 64});
        // A rejection is decided at submit: the ticket must be
        // Ready on a zero-timeout poll, not merely eventually.
        const bool ready = bounced.waitFor(0ns) == WaitStatus::Ready;
        const ServiceResult rb = bounced.get();
        if (rb.status == Status::Rejected) {
            EXPECT_TRUE(ready);
            EXPECT_TRUE(rb.recs.empty());
            sawReject = true;
        }
        // The parked request always drains to the full answer.
        EXPECT_EQ(big.get().matches, want);
    }
    EXPECT_TRUE(sawReject)
        << "submission never bounced off a standing backlog";

    // Once the backlog is gone, admission reopens.
    ResultTicket after = service.submit(
        RequestKind::Count, {d.keys.data(), 64});
    EXPECT_EQ(after.get().status, Status::Ok);
    EXPECT_GE(service.stats().rejected, 1u);
}

} // namespace

TEST(IndexService, BackpressureRejectsOverBudgetSubmissions)
{
    Dataset d(1u << 15, 1u << 19, false, 0.0, 53);
    ServiceConfig cfg;
    cfg.walkers = 1;
    cfg.maxQueuedKeys = 256;
    IndexService service(*d.flat, cfg);
    expectBackpressureBounces(service, d);
}

TEST(IndexService, BackpressureRejectsAffineSubmissions)
{
    Dataset d(1u << 15, 1u << 19, false, 0.0, 59);
    ServiceConfig cfg;
    cfg.walkers = 1;
    cfg.shards = 4;
    cfg.affineRouting = true;
    cfg.maxQueuedKeys = 256;
    IndexService service(*d.flat, cfg);
    expectBackpressureBounces(service, d);
}

// ---------------------------------------------------------------------------
// Shutdown semantics
// ---------------------------------------------------------------------------

TEST(IndexService, StopCancelsQueuedTicketsAndNeverHangs)
{
    using namespace std::chrono_literals;
    Dataset d(1u << 15, 1u << 17, false, 0.0, 61);
    ServiceConfig cfg;
    cfg.walkers = 1;
    IndexService service(*d.flat, cfg);

    // A deep backlog (one big + several small requests), then
    // stop() mid-drain. The contract: stop() returns (join), and
    // by then every ticket is Ready — drained requests Ok, the
    // stranded remainder Cancelled. No waiter can hang.
    std::vector<ResultTicket> tickets;
    tickets.push_back(service.submit(RequestKind::Count, d.keys));
    for (int i = 0; i < 8; ++i)
        tickets.push_back(service.submit(
            RequestKind::Count, {d.keys.data() + 64 * i, 64}));
    service.stop();

    u64 cancelled = 0, ok = 0;
    for (ResultTicket &t : tickets) {
        EXPECT_EQ(t.waitFor(0ns), WaitStatus::Ready);
        const ServiceResult r = t.get();
        (r.status == Status::Cancelled ? cancelled : ok)++;
        if (r.status != Status::Cancelled) {
            EXPECT_EQ(r.status, Status::Ok);
        }
    }
    const ServiceStats s = service.stats();
    EXPECT_EQ(s.cancelled, cancelled);
    EXPECT_EQ(s.completedOk, ok);

    // Submission after stop() completes immediately as Cancelled —
    // and stop() is idempotent (the destructor will run it again).
    ResultTicket late =
        service.submit(RequestKind::Count, {d.keys.data(), 8});
    EXPECT_EQ(late.waitFor(0ns), WaitStatus::Ready);
    EXPECT_EQ(late.get().status, Status::Cancelled);
    service.stop();
}

TEST(IndexService, StopWithAffineBacklogCancelsCleanly)
{
    using namespace std::chrono_literals;
    Dataset d(1u << 15, 1u << 17, false, 0.0, 67);
    ServiceConfig cfg;
    cfg.walkers = 2;
    cfg.shards = 4;
    cfg.affineRouting = true;
    IndexService service(*d.flat, cfg);

    std::vector<ResultTicket> tickets;
    for (int i = 0; i < 4; ++i)
        tickets.push_back(
            service.submit(RequestKind::Count, d.keys));
    service.stop();
    for (ResultTicket &t : tickets) {
        EXPECT_EQ(t.waitFor(0ns), WaitStatus::Ready);
        const ServiceResult r = t.get();
        EXPECT_TRUE(r.status == Status::Ok ||
                    r.status == Status::Cancelled);
    }
}

// ---------------------------------------------------------------------------
// ResultTicket::waitFor edge cases
// ---------------------------------------------------------------------------

TEST(IndexService, WaitForRacesCompletionWithoutLosingIt)
{
    using namespace std::chrono_literals;
    Dataset d(2000, 4000, false, 0.0, 71);
    ServiceConfig cfg;
    cfg.walkers = 2;
    IndexService service(*d.flat, cfg);

    // Zero- and micro-timeout polls racing the walkers: whatever
    // interleaving TSan provokes, the poll loop must observe
    // Ready exactly when the result is there, Ready must be
    // sticky across repeated waits, and get() must then return
    // the full result.
    for (int round = 0; round < 50; ++round) {
        const std::span<const u64> keys{
            d.keys.data() + (round % 32) * 64, 64};
        ResultTicket t = service.submit(RequestKind::Probe, keys);
        while (t.waitFor(round % 2 ? 0ns : 10us) !=
               WaitStatus::Ready) {
        }
        EXPECT_EQ(t.waitFor(0ns), WaitStatus::Ready);
        EXPECT_EQ(t.waitFor(1h), WaitStatus::Ready);
        EXPECT_TRUE(t.valid());
        const ServiceResult r = t.get();
        EXPECT_EQ(r.status, Status::Ok);
        expectSameSequence(r.recs, refSequence(*d.flat, keys),
                           "waitFor race");
        EXPECT_FALSE(t.valid());
    }
}

// ---------------------------------------------------------------------------
// Adaptive admission and the watchdog
// ---------------------------------------------------------------------------

TEST(IndexService, AdaptiveAdmissionAdjustsUnderOverload)
{
    Dataset d(2000, 6000, false, 0.0, 73);
    ServiceConfig cfg;
    cfg.walkers = 1;
    cfg.admission.adaptive = true;
    cfg.admission.intervalNs = 500'000; // adjust often in a test
    cfg.admission.targetQueueP99Ns = 50'000; // tight: force action
    IndexService service(*d.flat, cfg);

    OpenLoopOptions opt;
    opt.ratePerSec = 300000; // far past one walker's capacity
    opt.requests = 6000;
    opt.keysPerRequest = 16;
    opt.arrivals = ArrivalProcess::Poisson;
    const OpenLoopReport rep = runOpenLoop(service, d.keys, opt);

    // Accounting first: every submission lands in exactly one
    // bucket, client-side and server-side views agree.
    EXPECT_EQ(rep.submitted + rep.shedClientCap, rep.scheduled);
    EXPECT_EQ(rep.completed + rep.rejected + rep.expired +
                  rep.timedOut,
              rep.submitted);
    const ServiceStats s = service.stats();
    EXPECT_EQ(s.completedOk, rep.completed + rep.timedOut);
    EXPECT_EQ(s.rejected, rep.rejected);

    // The controller actually ran and reacted: it adjusted at
    // least once, and sustained overload against a 50 us queue
    // target must have forced decreases (hold trim or budget cut).
    EXPECT_GT(s.admission.adjustments, 0u);
    EXPECT_GT(s.admission.decreases, 0u);
    EXPECT_GE(s.admission.holdKeys, 1u);
    EXPECT_GE(s.admission.budgetKeys,
              cfg.admission.minBudgetKeys);
}

TEST(IndexService, WatchdogStaysQuietOnHealthyTraffic)
{
    using namespace std::chrono_literals;
    Dataset d(2000, 4000, false, 0.0, 79);
    ServiceConfig cfg;
    cfg.walkers = 2;
    cfg.watchdogPeriodNs = 2'000'000;    // poll fast,
    cfg.stallThresholdNs = 5'000'000'000; // judge leniently
    IndexService service(*d.flat, cfg);

    for (int i = 0; i < 200; ++i)
        service.count({d.keys.data() + (i % 32) * 64, 64});
    std::this_thread::sleep_for(20ms);
    EXPECT_EQ(service.stats().walkerStalls, 0u);
    // Destructor must join the watchdog promptly (no test hang).
}

// ---------------------------------------------------------------------------
// Async submission: CompletionQueue and callback sinks
// ---------------------------------------------------------------------------

TEST(IndexService, AsyncThousandsInFlightFromOneThread)
{
    // The acceptance shape for the async redesign: one client
    // thread parks >= 1024 requests in the service before reaping a
    // single completion — impossible with blocking tickets — and
    // every result is byte-identical to the single-threaded
    // reference for its span.
    Dataset d(4000, 1u << 15, false, 0.0, 101);
    ServiceConfig cfg;
    cfg.shards = 2;
    cfg.walkers = 2;
    IndexService service(*d.build, d.spec, cfg);

    constexpr std::size_t kReqs = 1500;
    static_assert(kReqs >= 1024);
    constexpr std::size_t kKeys = 16;
    auto cq = std::make_shared<CompletionQueue>();
    for (std::size_t i = 0; i < kReqs; ++i)
        service.submitAsync(
            RequestKind::Probe,
            {d.keys.data() + (i * kKeys) % (d.keys.size() - kKeys),
             kKeys},
            {}, cq, i);
    // All kReqs submitted, zero reaped: the client-side in-flight
    // count is kReqs >= 1024 right now.

    std::vector<Completion> done;
    for (int tries = 0; done.size() < kReqs && tries < 300; ++tries)
        cq->reap(done, kReqs, std::chrono::milliseconds(100));
    ASSERT_EQ(done.size(), kReqs);

    std::vector<bool> seen(kReqs, false);
    for (const Completion &c : done) {
        ASSERT_LT(c.tag, kReqs);
        EXPECT_FALSE(seen[c.tag]) << "tag delivered twice";
        seen[c.tag] = true;
        ASSERT_EQ(c.result.status, Status::Ok);
        const std::size_t base =
            (c.tag * kKeys) % (d.keys.size() - kKeys);
        const auto want =
            refSequence(*d.flat, {d.keys.data() + base, kKeys});
        expectSameSequence(c.result.recs, want, "async request");
    }
    // Requests, completions, and the live gauge all balance. A
    // delivered completion can be reaped a beat before its request
    // object unwinds out of the walker's window, so the gauge is
    // eventually-zero, not instantly-zero.
    EXPECT_EQ(service.stats().requests, kReqs);
    u64 live = kReqs;
    for (int tries = 0; tries < 500; ++tries) {
        live = service.stats().liveRequests;
        if (live == 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(live, 0u);
}

TEST(IndexService, ReapBatchesUnderConcurrentSubmitters)
{
    Dataset d(2000, 4096, false, 0.0, 103);
    ServiceConfig cfg;
    cfg.walkers = 2;
    IndexService service(*d.flat, cfg);

    constexpr unsigned kThreads = 4;
    constexpr u64 kPerThread = 200;
    auto cq = std::make_shared<CompletionQueue>();
    std::vector<std::thread> subs;
    for (unsigned t = 0; t < kThreads; ++t)
        subs.emplace_back([&, t] {
            for (u64 i = 0; i < kPerThread; ++i)
                service.submitAsync(
                    RequestKind::Count,
                    {d.keys.data() + ((t * 57 + i) % 32) * 64, 64},
                    {}, cq, t * kPerThread + i);
        });

    // Reap concurrently with the submitters, in bounded batches;
    // every tag must arrive exactly once, and at least one reap
    // must return more than one completion (the batching that makes
    // the queue cheaper than per-ticket waits).
    std::vector<bool> seen(kThreads * kPerThread, false);
    u64 reaped = 0;
    std::size_t maxBatch = 0;
    std::vector<Completion> batch;
    for (int tries = 0;
         reaped < kThreads * kPerThread && tries < 600; ++tries) {
        batch.clear();
        cq->reap(batch, 64, std::chrono::milliseconds(50));
        maxBatch = std::max(maxBatch, batch.size());
        for (const Completion &c : batch) {
            ASSERT_LT(c.tag, seen.size());
            EXPECT_FALSE(seen[c.tag]);
            seen[c.tag] = true;
            EXPECT_EQ(c.result.status, Status::Ok);
        }
        reaped += batch.size();
    }
    for (auto &t : subs)
        t.join();
    EXPECT_EQ(reaped, kThreads * kPerThread);
    EXPECT_GE(maxBatch, 1u);
}

TEST(IndexService, AsyncCompletionsOutrunSubmissionOrder)
{
    // Completion order is drain order, not submission order: an
    // empty-span request submitted *after* a large one completes
    // synchronously at submit and must be reapable while the large
    // request is still draining. The queue reports whatever
    // finishes first; tags are how clients correlate.
    Dataset d(1u << 14, 1u << 16, false, 0.0, 107);
    ServiceConfig cfg;
    cfg.walkers = 1;
    IndexService service(*d.flat, cfg);

    auto cq = std::make_shared<CompletionQueue>();
    service.submitAsync(RequestKind::Count, d.keys, {}, cq, 1);
    service.submitAsync(RequestKind::Count, std::span<const u64>{},
                        {}, cq, 2);

    std::vector<Completion> done;
    for (int tries = 0; done.size() < 2 && tries < 200; ++tries)
        cq->reap(done, 2, std::chrono::milliseconds(100));
    ASSERT_EQ(done.size(), 2u);
    EXPECT_TRUE((done[0].tag == 1 && done[1].tag == 2) ||
                (done[0].tag == 2 && done[1].tag == 1));
    for (const Completion &c : done)
        EXPECT_EQ(c.result.status, Status::Ok);
}

TEST(IndexService, CallbackSinkDeliversAndSurvivesThrow)
{
    Dataset d(2000, 2048, false, 0.0, 109);
    ServiceConfig cfg;
    cfg.walkers = 2;
    IndexService service(*d.flat, cfg);

    // A callback that records its result and then throws: the
    // throw must be swallowed (a walker that unwinds strands every
    // queued request), and the service must keep serving.
    std::mutex m;
    std::condition_variable cv;
    u64 got = 0;
    bool ready = false;
    service.submitAsync(
        RequestKind::Count, {d.keys.data(), 256}, {},
        [&](ServiceResult &&r) {
            {
                std::lock_guard<std::mutex> lk(m);
                got = r.matches;
                ready = true;
            }
            cv.notify_all();
            throw std::runtime_error("client bug");
        });
    {
        std::unique_lock<std::mutex> lk(m);
        ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(10),
                                [&] { return ready; }));
    }
    const auto want = refSequence(*d.flat, {d.keys.data(), 256});
    EXPECT_EQ(got, want.size());
    // Still alive after the throwing callback.
    EXPECT_EQ(service.count({d.keys.data(), 256}), want.size());
}

TEST(IndexService, SubmitAfterStopDeliversCancelledThroughQueue)
{
    Dataset d(2000, 1024, false, 0.0, 113);
    ServiceConfig cfg;
    cfg.walkers = 1;
    IndexService service(*d.flat, cfg);
    service.stop();

    auto cq = std::make_shared<CompletionQueue>();
    service.submitAsync(RequestKind::Count, {d.keys.data(), 64}, {},
                        cq, 7);
    // Fast-fail completes on the submitting thread, so the
    // completion is already queued.
    EXPECT_EQ(cq->size(), 1u);
    std::vector<Completion> done;
    cq->reap(done, 8, std::chrono::milliseconds(100));
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].tag, 7u);
    EXPECT_EQ(done[0].result.status, Status::Cancelled);

    // Callback sink, same contract.
    Status cbStatus = Status::Ok;
    service.submitAsync(RequestKind::Count, {d.keys.data(), 64}, {},
                        [&](ServiceResult &&r) {
                            cbStatus = r.status;
                        });
    EXPECT_EQ(cbStatus, Status::Cancelled);
}

TEST(IndexService, AbandonedTicketReleasesRequestMemoryPromptly)
{
    // Regression: a ticket abandoned after a waitFor timeout (the
    // old open-loop reaper's drainTimeout path) must not pin its
    // request's memory until service stop. Once the service
    // completes the request and the ticket is gone, the request
    // frees and the live gauge returns to zero — while the service
    // is still running.
    using namespace std::chrono_literals;
    Dataset d(1u << 14, 1u << 16, false, 0.0, 127);
    ServiceConfig cfg;
    cfg.walkers = 1;
    IndexService service(*d.flat, cfg);

    {
        std::vector<ResultTicket> abandoned;
        abandoned.push_back(
            service.submit(RequestKind::Count, d.keys));
        for (int i = 0; i < 16; ++i)
            abandoned.push_back(service.submit(
                RequestKind::Count, {d.keys.data() + 64 * i, 64}));
        // Simulate impatient clients: a bounded wait, then drop the
        // tickets without get().
        for (ResultTicket &t : abandoned)
            (void)t.waitFor(0ns);
    } // tickets destroyed here, requests possibly still in flight

    // The service drains the abandoned requests on its own; the
    // gauge must hit zero promptly without stop().
    bool drained = false;
    for (int tries = 0; tries < 500; ++tries) {
        if (service.stats().liveRequests == 0) {
            drained = true;
            break;
        }
        std::this_thread::sleep_for(10ms);
    }
    EXPECT_TRUE(drained)
        << "live requests: " << service.stats().liveRequests;
    // Still serving after the cleanup.
    EXPECT_EQ(service.count({d.keys.data(), 64}),
              refSequence(*d.flat, {d.keys.data(), 64}).size());
}
