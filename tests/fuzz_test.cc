/**
 * @file
 * Robustness suite: randomized inputs must never crash the toolchain
 * or violate model invariants — malformed assembly produces
 * diagnostics, corrupt control blocks are rejected, random
 * instruction words either fail validation or survive an
 * encode/decode round trip, and the memory system preserves its
 * resource invariants under arbitrary access streams.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <span>
#include <vector>

#include "accel/control_block.hh"
#include "common/arena.hh"
#include "common/failpoint.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "service/index_service.hh"
#include "sim/mem_system.hh"
#include "workload/distributions.hh"

using namespace widx;

namespace {

/** Trial-count multiplier: WIDX_FUZZ_SCALE=N stretches every fuzz
 *  loop N-fold. PRs run at 1; the weekly CI schedule runs at 20 so
 *  rare inputs surface without taxing per-PR latency. */
int
fuzzScale()
{
    static const int scale = [] {
        const char *env = std::getenv("WIDX_FUZZ_SCALE");
        const int v = env ? std::atoi(env) : 1;
        return v < 1 ? 1 : v;
    }();
    return scale;
}

/** Random printable garbage with assembler-relevant characters. */
std::string
garbageLine(Rng &rng)
{
    static const char alphabet[] =
        "abcdefghijklmnopqrstuvwxyz0123456789 ,#[]+-:rx";
    std::string s;
    const u64 len = rng.below(40);
    for (u64 i = 0; i < len; ++i)
        s.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
    return s;
}

} // namespace

TEST(Fuzz, AssemblerNeverCrashesOnGarbage)
{
    Rng rng(0xF00D);
    for (int trial = 0; trial < 500 * fuzzScale(); ++trial) {
        std::string src;
        const u64 lines = 1 + rng.below(8);
        for (u64 l = 0; l < lines; ++l) {
            src += garbageLine(rng);
            src += '\n';
        }
        isa::Program prog;
        std::string error;
        bool ok = isa::assemble("fuzz", isa::UnitKind::Dispatcher,
                                src, error, prog);
        if (!ok)
            EXPECT_FALSE(error.empty());
        else {
            // If it assembled, it must disassemble and re-validate
            // structurally (legality may still fail).
            EXPECT_NO_FATAL_FAILURE((void)prog.disassemble());
        }
    }
}

TEST(Fuzz, AssemblerAcceptsValidAfterGarbageRejections)
{
    // The assembler keeps no global state: a failure must not
    // poison a following valid translation.
    isa::Program p;
    std::string err;
    EXPECT_FALSE(isa::assemble("bad", isa::UnitKind::Walker,
                               "ld r1, [r2 +\n", err, p));
    EXPECT_TRUE(isa::assemble("good", isa::UnitKind::Walker,
                              "ld r1, [r2 + 0]\n", err, p))
        << err;
    EXPECT_EQ(p.size(), 1u);
}

TEST(Fuzz, RandomInstructionWordsDecodeOrFailValidation)
{
    Rng rng(0xBEEF);
    for (int trial = 0; trial < 2000 * fuzzScale(); ++trial) {
        // Constrain the opcode field to valid range so decode()
        // succeeds; all other fields are random garbage.
        u64 word = rng.next();
        const u64 op = rng.below(u64(isa::Opcode::NumOpcodes));
        word = (word & ~(0x3Full << 58)) | (op << 58);
        isa::Instruction inst = isa::Instruction::decode(word);
        // Round trip must be stable on the modeled fields.
        isa::Instruction again =
            isa::Instruction::decode(inst.encode());
        EXPECT_EQ(inst, again);
        // Validation must terminate with a verdict (never crash).
        isa::Program prog("fuzz", isa::UnitKind::Producer);
        prog.append(inst);
        std::string error;
        (void)prog.validate(error);
    }
}

TEST(Fuzz, ControlBlockDecoderRejectsRandomWords)
{
    Rng rng(0xCAFE);
    for (int trial = 0; trial < 500 * fuzzScale(); ++trial) {
        std::vector<u64> words(rng.below(64));
        for (u64 &w : words)
            w = rng.next();
        if (!words.empty() && rng.chance(0.5))
            words[0] = accel::kControlBlockMagic;
        std::vector<isa::Program> out;
        std::string error;
        if (!accel::decodeControlBlock(words, error, out)) {
            EXPECT_FALSE(error.empty());
        }
    }
}

TEST(Fuzz, ControlBlockBitflipsNeverCrash)
{
    // Corrupt a valid block one word at a time.
    isa::Program d = isa::assembleOrDie(
        "d", isa::UnitKind::Dispatcher,
        "loop: ld r21, [r1 + 0]\nadd r1, r1, r5\nba loop\n");
    std::vector<u64> words = accel::encodeControlBlock({d});
    Rng rng(0xD00D);
    for (std::size_t i = 0; i < words.size(); ++i) {
        std::vector<u64> corrupt = words;
        corrupt[i] ^= u64(1) << rng.below(64);
        std::vector<isa::Program> out;
        std::string error;
        (void)accel::decodeControlBlock(corrupt, error, out);
        // Either rejected with a message or decoded to programs
        // that still validate structurally (flips can be benign).
        if (!out.empty()) {
            for (auto &p : out)
                (void)p.validate(error);
        }
    }
}

TEST(Fuzz, MemSystemInvariantsUnderRandomStream)
{
    Rng rng(0x5EED);
    sim::Params params;
    sim::MemSystem mem(params);
    Cycle now = 0;
    for (int i = 0; i < 20000 * fuzzScale(); ++i) {
        // Stay below both sustained-capacity walls — 2-MC bandwidth
        // (~0.2 blocks/cycle) and MSHR-limited concurrency
        // (10 MSHRs / ~112-cycle fills ~ 0.09 blocks/cycle) — so
        // queueing stays bounded. Sustained oversubscription rightly
        // grows latency without bound (the Section 3.2 walls, Fig.
        // 4b/4c), which would void any constant bound.
        now += 14 + rng.below(8);
        const Addr addr =
            0x7f0000000000ull + rng.below(1u << 26);
        const auto kind =
            rng.chance(0.1)
                ? sim::AccessKind::Prefetch
                : (rng.chance(0.1) ? sim::AccessKind::Store
                                   : sim::AccessKind::Load);
        sim::AccessResult r = mem.access(now, addr, kind);
        if (kind == sim::AccessKind::Load) {
            // Loads can never complete before load-to-use latency.
            ASSERT_GE(r.ready, now + params.l1Latency);
            // And never take longer than a worst-case bound:
            // TLB queue + walk + MSHR drain + memory round trip.
            const Cycle bound =
                now + 2 * params.tlbWalkLatency +
                Cycle(params.l1Mshrs) *
                    (params.dramLatency +
                     params.memCtrlCyclesPerBlock()) +
                4096; // slack for MSHR-drain + queue cascades
            ASSERT_LE(r.ready, bound);
        }
        if (r.level == sim::HitLevel::Dropped) {
            ASSERT_EQ(kind, sim::AccessKind::Prefetch);
        }
    }
    // MSHR occupancy never exceeded its capacity.
    ASSERT_LE(mem.mshrs().peakInflight(), params.l1Mshrs);
}

TEST(Fuzz, CacheStressKeepsLruConsistent)
{
    Rng rng(0xACE);
    sim::Cache cache("fuzz", 4096, 4);
    // Model of the cache's content for a small address universe.
    for (int i = 0; i < 50000 * fuzzScale(); ++i) {
        Addr a = rng.below(256) * kCacheBlockBytes;
        if (rng.chance(0.5)) {
            cache.insert(a);
            ASSERT_TRUE(cache.contains(a));
        } else if (rng.chance(0.2)) {
            cache.invalidate(a);
            ASSERT_FALSE(cache.contains(a));
        } else {
            bool hit = cache.lookup(a);
            ASSERT_EQ(hit, cache.contains(a));
        }
    }
    EXPECT_EQ(cache.hits() + cache.misses(),
              cache.hits() + cache.misses());
}

// ---------------------------------------------------------------------------
// Service under a random failpoint schedule
// ---------------------------------------------------------------------------

/**
 * Random chaos schedule against the index service: every trial draws
 * a service shape (shards, walkers, routing, coalescing), arms a
 * random subset of the service's failpoints with random budgets and
 * delays, fires a burst of concurrent mixed-size requests, and
 * asserts the only thing fault injection is allowed to change is
 * *timing*: every ticket completes, and every Ok result is
 * byte-identical to a flat single-threaded HashIndex::probeBatch
 * over the same keys. Skips itself when the build compiled the
 * failpoints out (the schedule would exercise nothing).
 *
 * WIDX_FUZZ_SCALE stretches the trial count like every other fuzz
 * loop here.
 */
TEST(Fuzz, ServiceSurvivesRandomFailpointSchedules)
{
    if (!fp::enabled())
        GTEST_SKIP() << "built without -DWIDX_FAILPOINTS=ON";

    Rng rng(0xFA11);
    Arena arena;
    const u64 tuples = 4000;
    db::Column build("b", db::ValueKind::U64, arena, tuples);
    for (u64 k : wl::uniformKeys(tuples, tuples / 2 + 1, rng))
        build.push(k); // duplicates on purpose
    db::IndexSpec spec;
    spec.buckets = tuples / 2;
    db::HashIndex flat(spec, arena);
    flat.buildFromColumn(build);
    std::vector<u64> pool =
        wl::uniformKeys(1u << 14, tuples / 2 + 1, rng);

    static const char *const sites[] = {
        "service.walker_stall",
        "service.slow_drain",
        "service.walker_claim_delay",
    };

    for (int trial = 0; trial < 6 * fuzzScale(); ++trial) {
        sw::ServiceConfig cfg;
        cfg.shards = 1u << rng.below(3);
        cfg.walkers = 1 + unsigned(rng.below(4));
        cfg.affineRouting = rng.chance(0.5);
        cfg.coalesceTails = rng.chance(0.5);
        sw::IndexService service(flat, cfg);

        fp::disarmAll();
        for (const char *site : sites)
            if (rng.chance(0.7))
                fp::arm(site, 1 + rng.below(6),
                        rng.below(3'000'000)); // up to 3 ms a hit

        struct Shot
        {
            sw::ResultTicket ticket;
            std::span<const u64> keys;
        };
        std::vector<Shot> shots;
        for (int r = 0; r < 40; ++r) {
            const std::size_t len = 1 + rng.below(200);
            const std::size_t base =
                rng.below(pool.size() - len);
            std::span<const u64> keys{pool.data() + base, len};
            shots.push_back(Shot{
                service.submit(sw::RequestKind::Probe, keys),
                keys});
        }
        for (Shot &s : shots) {
            const sw::ServiceResult r = s.ticket.get();
            ASSERT_EQ(r.status, sw::Status::Ok);
            std::vector<sw::MatchRec> want;
            flat.probeBatch(
                s.keys, [&](std::size_t i, u64 key, u64 payload) {
                    want.push_back({i, key, payload});
                });
            ASSERT_EQ(r.recs.size(), want.size())
                << "trial " << trial;
            for (std::size_t i = 0; i < want.size(); ++i) {
                ASSERT_EQ(r.recs[i].i, want[i].i);
                ASSERT_EQ(r.recs[i].key, want[i].key);
                ASSERT_EQ(r.recs[i].payload, want[i].payload);
            }
        }
        fp::disarmAll();
    }
}
