/**
 * @file
 * Tests for the Section 6.3 energy/area model.
 */

#include <gtest/gtest.h>

#include "energy/energy.hh"

using namespace widx;
using namespace widx::energy;

TEST(Energy, ActivePowerOrdering)
{
    EnergyParams p;
    // Widx-on-idle-OoO draws more than the bare in-order core but
    // far less than the active OoO core.
    EXPECT_LT(p.activeWatts(Design::InOrder),
              p.activeWatts(Design::WidxOnOoO));
    EXPECT_LT(p.activeWatts(Design::WidxOnOoO),
              p.activeWatts(Design::OoO));
}

TEST(Energy, ComputeEnergyScalesLinearly)
{
    EnergyParams p;
    EnergyResult r1 = computeEnergy(p, Design::OoO, 2000000000ull);
    EnergyResult r2 = computeEnergy(p, Design::OoO, 4000000000ull);
    EXPECT_NEAR(r1.seconds, 1.0, 1e-9); // 2e9 cycles at 2 GHz
    EXPECT_NEAR(r2.joules, 2.0 * r1.joules, 1e-9);
    EXPECT_NEAR(r2.edp, 4.0 * r1.edp, 1e-6);
}

TEST(Energy, PaperEnergyRatiosReproduce)
{
    EnergyParams p;
    // In-order at 2.2x the runtime must save ~86% energy.
    const Cycle base = 1000000;
    double e_ooo = computeEnergy(p, Design::OoO, base).joules;
    double e_io =
        computeEnergy(p, Design::InOrder, Cycle(base * 2.2)).joules;
    EXPECT_NEAR(1.0 - e_io / e_ooo, 0.86, 0.02);

    // Widx at ~1/3 the runtime with the OoO idling: ~85% saving
    // (paper: 83%).
    double e_wx = computeEnergy(p, Design::WidxOnOoO,
                                Cycle(base / 3.1)).joules;
    EXPECT_NEAR(1.0 - e_wx / e_ooo, 0.83, 0.06);
}

TEST(Energy, AreaConstantsMatchPaper)
{
    AreaConstants a;
    EXPECT_NEAR(a.widxVsA8AreaFraction(), 0.18, 0.01);
    EXPECT_NEAR(a.widxSixUnitsWatts, 0.320, 1e-9);
    EXPECT_NEAR(a.widxUnitMm2 * 6.0, a.widxSixUnitsMm2, 0.01);
}
