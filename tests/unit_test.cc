/**
 * @file
 * Tests for the Widx unit interpreter: functional semantics of every
 * opcode, queue-register behaviour, timing attribution, halting, and
 * the control-block round trip.
 */

#include <gtest/gtest.h>

#include "accel/control_block.hh"
#include "accel/unit.hh"
#include "db/value.hh"
#include "isa/assembler.hh"

using namespace widx;
using namespace widx::accel;
using isa::Opcode;
using isa::UnitKind;

namespace {

/** Run a walker-context program to completion; return total cycles. */
Cycle
runToHalt(Unit &unit, Cycle max_cycles = 100000)
{
    Cycle now = 0;
    while (!unit.halted() && now < max_cycles) {
        unit.tick(now);
        ++now;
    }
    EXPECT_TRUE(unit.halted()) << "program did not halt";
    return now;
}

} // namespace

TEST(Unit, AluSemantics)
{
    isa::Program p = isa::assembleOrDie(
        "alu", UnitKind::Dispatcher,
        "add r10, r1, r2\n"
        "xor r11, r1, r2\n"
        "and r12, r1, r2\n"
        "cmp r13, r1, r1\n"
        "cmp r14, r1, r2\n"
        "cmple r15, r2, r1\n"
        "shl r16, r1, #4\n"
        "shr r17, r1, #4\n"
        "addshf r18, r1, r2, lsl #2\n"
        "xorshf r19, r1, r1, lsr #8\n"
        "andshf r20, r1, r2, lsl #1\n");
    p.setReg(1, 0xF0F0);
    p.setReg(2, 0x0FF0);

    sim::MemSystem mem;
    Unit u("u", p, mem, nullptr, nullptr);
    runToHalt(u);

    EXPECT_EQ(u.reg(10), 0xF0F0u + 0x0FF0u);
    EXPECT_EQ(u.reg(11), 0xF0F0ull ^ 0x0FF0ull);
    EXPECT_EQ(u.reg(12), 0xF0F0ull & 0x0FF0ull);
    EXPECT_EQ(u.reg(13), 1u);
    EXPECT_EQ(u.reg(14), 0u);
    EXPECT_EQ(u.reg(15), 1u); // 0x0FF0 <= 0xF0F0
    EXPECT_EQ(u.reg(16), 0xF0F0ull << 4);
    EXPECT_EQ(u.reg(17), 0xF0F0ull >> 4);
    EXPECT_EQ(u.reg(18), 0xF0F0ull + (0x0FF0ull << 2));
    EXPECT_EQ(u.reg(19), 0xF0F0ull ^ (0xF0F0ull >> 8));
    EXPECT_EQ(u.reg(20), 0xF0F0ull & (0x0FF0ull << 1));
}

TEST(Unit, ZeroRegisterReadsAsZero)
{
    isa::Program p = isa::assembleOrDie("z", UnitKind::Dispatcher,
                                        "add r10, zero, r1\n");
    p.setReg(1, 77);
    sim::MemSystem mem;
    Unit u("u", p, mem, nullptr, nullptr);
    runToHalt(u);
    EXPECT_EQ(u.reg(10), 77u);
}

TEST(Unit, LoadAndStoreTouchHostMemory)
{
    u64 data[4] = {11, 22, 33, 0};
    isa::Program p = isa::assembleOrDie(
        "mem", UnitKind::Producer,
        "ld r10, [r1 + 0]\n"
        "ld r11, [r1 + 8]\n"
        "add r12, r10, r11\n"
        "st [r1 + 24], r12\n");
    p.setReg(1, Addr(reinterpret_cast<std::uintptr_t>(data)));
    sim::MemSystem mem;
    Unit u("u", p, mem, nullptr, nullptr);
    runToHalt(u);
    EXPECT_EQ(data[3], 33u);
    EXPECT_EQ(u.loadsExecuted(), 2u);
    EXPECT_EQ(u.storesExecuted(), 1u);
}

TEST(Unit, BranchLoopAndHalt)
{
    // Count r10 from 0 to 5.
    isa::Program p = isa::assembleOrDie(
        "loop", UnitKind::Dispatcher,
        "loop:\n"
        "    add r10, r10, r1\n"
        "    ble r10, r2, loop\n"); // while r10 <= 5
    p.setReg(1, 1);
    p.setReg(2, 5);
    sim::MemSystem mem;
    Unit u("u", p, mem, nullptr, nullptr);
    runToHalt(u);
    EXPECT_EQ(u.reg(10), 6u);
}

TEST(Unit, TakenBranchCostsBubble)
{
    // Two straight ALU ops vs ALU + taken branch + ALU.
    isa::Program straight = isa::assembleOrDie(
        "s", UnitKind::Dispatcher,
        "add r10, r10, r1\nadd r10, r10, r1\n");
    isa::Program branchy = isa::assembleOrDie(
        "b", UnitKind::Dispatcher,
        "add r10, r10, r1\nba next\nnext:\nadd r10, r10, r1\n");
    straight.setReg(1, 1);
    branchy.setReg(1, 1);
    sim::MemSystem m1, m2;
    Unit u1("u1", straight, m1, nullptr, nullptr);
    Unit u2("u2", branchy, m2, nullptr, nullptr);
    runToHalt(u1);
    runToHalt(u2);
    EXPECT_EQ(u1.breakdown().comp + 0, 2u);
    EXPECT_EQ(u2.breakdown().comp, 4u); // 1 + (2: taken) + 1
}

TEST(Unit, QueuePopLatchesAndPushes)
{
    DirectQueue in(4), out(4);
    in.push({100, 200});
    in.push({300, 400});
    in.push({db::kEmptyKey, 0});

    // Pop; re-stage {w0+1, w1+2}; push; loop until sentinel.
    isa::Program p = isa::assembleOrDie(
        "q", UnitKind::Walker,
        "loop:\n"
        "    cmp r12, r30, r2\n"   // pop; null check
        "    ble r3, r12, halt\n"
        "    add r10, r29, r4\n"   // latched w0 + 1
        "    add r11, r31, r5\n"   // latched w1 + 2
        "    add r30, r10, zero\n" // stage
        "    add r31, r11, zero\n" // push
        "    ba loop\n");
    p.setReg(2, db::kEmptyKey);
    p.setReg(3, 1);
    p.setReg(4, 1);
    p.setReg(5, 2);

    sim::MemSystem mem;
    Unit u("u", p, mem, &in, &out);
    runToHalt(u);
    EXPECT_EQ(u.entriesPopped(), 3u);
    EXPECT_EQ(u.entriesPushed(), 2u);
    QueueEntry e1 = out.pop();
    QueueEntry e2 = out.pop();
    EXPECT_EQ(e1.w0, 101u);
    EXPECT_EQ(e1.w1, 202u);
    EXPECT_EQ(e2.w0, 301u);
    EXPECT_EQ(e2.w1, 402u);
}

TEST(Unit, EmptyQueueStallsAsIdle)
{
    DirectQueue in(2);
    isa::Program p = isa::assembleOrDie(
        "idle", UnitKind::Walker, "add r10, r30, zero\n");
    sim::MemSystem mem;
    Unit u("u", p, mem, &in, nullptr);
    for (Cycle c = 0; c < 50; ++c)
        u.tick(c);
    EXPECT_FALSE(u.halted());
    EXPECT_EQ(u.breakdown().idle, 50u);
    in.push({9, 9});
    u.tick(50);
    u.tick(51);
    EXPECT_EQ(u.reg(10), 9u);
}

TEST(Unit, FullOutputQueueStallsAsBackpressure)
{
    DirectQueue out(1);
    out.push({0, 0}); // already full
    isa::Program p = isa::assembleOrDie(
        "bp", UnitKind::Walker, "add r31, r1, zero\n");
    p.setReg(1, 5);
    sim::MemSystem mem;
    Unit u("u", p, mem, nullptr, &out);
    for (Cycle c = 0; c < 20; ++c)
        u.tick(c);
    EXPECT_EQ(u.breakdown().backpressure, 20u);
    out.pop();
    u.tick(20);
    EXPECT_EQ(out.pop().w1, 5u);
}

TEST(Unit, LoadStallAttributedToMem)
{
    u64 cell = 42;
    isa::Program p = isa::assembleOrDie(
        "ld", UnitKind::Walker, "ld r10, [r1 + 0]\n");
    p.setReg(1, Addr(reinterpret_cast<std::uintptr_t>(&cell)));
    sim::MemSystem mem;
    Unit u("u", p, mem, nullptr, nullptr);
    Cycle total = runToHalt(u);
    EXPECT_EQ(u.reg(10), 42u);
    // Cold access: DRAM latency dominates, attributed to Mem + TLB.
    EXPECT_GT(u.breakdown().mem, mem.params().dramLatency / 2);
    EXPECT_GT(u.breakdown().tlb, 0u);
    EXPECT_GE(total, u.breakdown().total());
}

TEST(Unit, RestartResetsArchitecturalState)
{
    isa::Program p = isa::assembleOrDie(
        "r", UnitKind::Dispatcher, "add r10, r10, r1\n");
    p.setReg(1, 7);
    sim::MemSystem mem;
    Unit u("u", p, mem, nullptr, nullptr);
    runToHalt(u);
    EXPECT_EQ(u.reg(10), 7u);
    u.restart();
    EXPECT_FALSE(u.halted());
    EXPECT_EQ(u.reg(10), 0u);
    runToHalt(u);
    EXPECT_EQ(u.reg(10), 7u);
}

TEST(ControlBlock, EncodeDecodeRoundTrip)
{
    isa::Program d = isa::assembleOrDie(
        "d", UnitKind::Dispatcher,
        "loop: ld r21, [r1 + 0]\nxorshf r20, r21, r21, lsr #33\n"
        "ba loop\n");
    d.setReg(1, 0x1234);
    isa::Program w = isa::assembleOrDie(
        "w", UnitKind::Walker, "cmp r12, r30, r2\nble r3, r12, halt\n"
                               "ba halt\n");
    w.setReg(2, ~0ull);

    std::vector<u64> words = encodeControlBlock({d, w});
    std::vector<isa::Program> decoded;
    std::string err;
    ASSERT_TRUE(decodeControlBlock(words, err, decoded)) << err;
    ASSERT_EQ(decoded.size(), 2u);
    EXPECT_EQ(decoded[0].unit(), UnitKind::Dispatcher);
    EXPECT_EQ(decoded[0].size(), d.size());
    EXPECT_EQ(decoded[0].reg(1), 0x1234u);
    EXPECT_EQ(decoded[1].reg(2), ~0ull);
    for (unsigned i = 0; i < d.size(); ++i)
        EXPECT_EQ(decoded[0].at(i), d.at(i));
}

TEST(ControlBlock, RejectsCorruptImages)
{
    std::vector<isa::Program> out;
    std::string err;
    EXPECT_FALSE(decodeControlBlock({}, err, out));
    EXPECT_FALSE(decodeControlBlock({0xBAD, 1}, err, out));

    isa::Program d("d", UnitKind::Dispatcher);
    d.append(isa::Instruction::alu(Opcode::ADD, 1, 2, 3));
    std::vector<u64> words = encodeControlBlock({d});
    words.pop_back(); // truncate
    EXPECT_FALSE(decodeControlBlock(words, err, out));
    EXPECT_NE(err.find("truncated"), std::string::npos);
}
