/**
 * @file
 * Unit tests for the common substrate: stats, RNG, arena, fixed
 * queue, bit operations, table printer.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/arena.hh"
#include "common/bitops.hh"
#include "common/fixed_queue.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table_printer.hh"

using namespace widx;

TEST(Stats, MeanGeomeanHarmean)
{
    std::vector<double> xs{1.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
    EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
    EXPECT_NEAR(harmean(xs), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, StddevOfConstantIsZero)
{
    EXPECT_DOUBLE_EQ(stddev({5.0, 5.0, 5.0}), 0.0);
    EXPECT_NEAR(stddev({1.0, 3.0}), 1.0, 1e-12);
}

TEST(Stats, SummaryTracksMinMaxAvg)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    s.sample(4.0);
    s.sample(2.0);
    s.sample(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.avg(), 4.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, HistogramBucketsAndCdf)
{
    Histogram h(4, 10.0);
    h.sample(5.0);
    h.sample(15.0);
    h.sample(15.0);
    h.sample(1000.0); // clamps into the last bucket
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_DOUBLE_EQ(h.cdfAt(1), 0.75);
    EXPECT_DOUBLE_EQ(h.cdfAt(3), 1.0);
}

TEST(Stats, StatSetCountersAndRatios)
{
    StatSet s;
    s.inc("hits", 3);
    s.inc("hits");
    s.set("misses", 2);
    EXPECT_EQ(s.get("hits"), 4u);
    EXPECT_EQ(s.get("absent"), 0u);
    EXPECT_DOUBLE_EQ(s.ratio("misses", "hits"), 0.5);
    EXPECT_DOUBLE_EQ(s.ratio("hits", "absent"), 0.0);
}

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformCoversUnitInterval)
{
    Rng r(9);
    double min = 1.0;
    double max = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        min = std::min(min, u);
        max = std::max(max, u);
    }
    EXPECT_LT(min, 0.01);
    EXPECT_GT(max, 0.99);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Arena, AllocationsAreZeroedAndAligned)
{
    Arena arena(4096);
    for (std::size_t align : {8u, 16u, 64u, 256u}) {
        auto *p = static_cast<unsigned char *>(
            arena.allocateBytes(100, align));
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
        for (int i = 0; i < 100; ++i)
            EXPECT_EQ(p[i], 0);
    }
}

TEST(Arena, ObjectsSurviveChunkGrowth)
{
    Arena arena(1024);
    std::vector<u64 *> ptrs;
    for (u64 i = 0; i < 1000; ++i)
        ptrs.push_back(arena.make<u64>(i));
    for (u64 i = 0; i < 1000; ++i)
        EXPECT_EQ(*ptrs[i], i);
    EXPECT_GT(arena.reservedBytes(), arena.allocatedBytes() / 2);
}

TEST(Arena, LargeAllocationExceedingChunk)
{
    Arena arena(1024);
    auto *big = arena.makeArray<u64>(10000);
    big[9999] = 42;
    EXPECT_EQ(big[9999], 42u);
}

TEST(FixedQueue, FifoOrderAndCapacity)
{
    FixedQueue<int> q(3);
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.push(3));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.push(4));
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_TRUE(q.push(5));
    EXPECT_EQ(q.pop(), 3);
    EXPECT_EQ(q.pop(), 5);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.peakSize(), 3u);
    EXPECT_EQ(q.totalPushes(), 4u);
}

TEST(FixedQueue, WrapAroundManyTimes)
{
    FixedQueue<u64> q(2);
    for (u64 i = 0; i < 1000; ++i) {
        ASSERT_TRUE(q.push(i));
        ASSERT_EQ(q.pop(), i);
    }
}

TEST(BitOps, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(48));
    EXPECT_EQ(log2Exact(64), 6u);
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(nextPowerOfTwo(3), 4u);
    EXPECT_EQ(nextPowerOfTwo(4096), 4096u);
}

TEST(BitOps, BitsAndInsertBitsRoundTrip)
{
    u64 v = 0xDEADBEEFCAFEBABEull;
    EXPECT_EQ(bits(v, 7, 0), 0xBEull);
    EXPECT_EQ(bits(v, 63, 56), 0xDEull);
    u64 w = insertBits(0, 15, 8, 0xAB);
    EXPECT_EQ(bits(w, 15, 8), 0xABull);
    EXPECT_EQ(bits(w, 7, 0), 0u);
}

TEST(BitOps, AddressAlignment)
{
    EXPECT_EQ(blockAlign(0x1234567F), 0x12345640u);
    EXPECT_EQ(pageAlign(0x12345678), 0x12345000u);
}

TEST(TablePrinter, CsvAndFormatters)
{
    TablePrinter t("test");
    t.header({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.toCsv(), "a,b\n1,2\n");
    EXPECT_EQ(TablePrinter::fmt(1.2345, 2), "1.23");
    EXPECT_EQ(TablePrinter::fmtInt(1234567), "1,234,567");
    EXPECT_EQ(TablePrinter::fmtPct(0.125), "12.5%");
}
