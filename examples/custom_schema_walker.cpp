/**
 * @file
 * Programmability demo (Section 4.2): support a schema the stock
 * code generator has never seen by writing the walker by hand in
 * Widx assembly.
 *
 * The custom index here is an open-addressing table with inline
 * probing: 16-byte slots {key, payload}, linear probing with wrap,
 * kEmptySlot marking free slots — a layout entirely unlike the
 * chained node lists the built-in walker expects. A hand-written
 * walker program handles it with the same Table 1 ISA, demonstrating
 * why limited programmability (rather than fixed-function hardware)
 * lets Widx support "a virtually limitless variety of schemas".
 */

#include <cstdio>
#include <vector>

#include "accel/unit.hh"
#include "common/arena.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workload/distributions.hh"

using namespace widx;

namespace {

constexpr u64 kEmptySlot = ~u64{0};

struct OpenTable
{
    u64 mask;       ///< slots - 1
    u64 *slots;     ///< {key, payload} pairs

    explicit OpenTable(Arena &arena, u64 slot_count)
        : mask(slot_count - 1)
    {
        slots = static_cast<u64 *>(arena.allocateBytes(
            slot_count * 16, kCacheBlockBytes));
        for (u64 i = 0; i < slot_count; ++i)
            slots[2 * i] = kEmptySlot;
    }

    void
    insert(u64 key, u64 payload)
    {
        u64 i = key & mask; // identity hash keeps the demo focused
        while (slots[2 * i] != kEmptySlot)
            i = (i + 1) & mask;
        slots[2 * i] = key;
        slots[2 * i + 1] = payload;
    }

    u64
    lookup(u64 key) const
    {
        u64 i = key & mask;
        while (slots[2 * i] != kEmptySlot) {
            if (slots[2 * i] == key)
                return slots[2 * i + 1];
            i = (i + 1) & mask;
        }
        return kEmptySlot;
    }
};

} // namespace

int
main()
{
    Arena arena;
    Rng rng(5);
    const u64 slot_count = 1u << 16;
    OpenTable table(arena, slot_count);
    for (u64 k = 1; k <= slot_count / 2; ++k)
        table.insert(k, k * 100);

    // Probe keys: half present, half absent.
    std::vector<u64> keys = wl::uniformKeys(20000, slot_count, rng);

    // The hand-written combined walker: hash (identity & mask),
    // linear-probe until hit or empty, accumulate payload sum in
    // r20 and match count in r21.
    //
    //   r1 cursor, r2 end, r3 slot base, r4 mask, r5 stride,
    //   r6 empty marker, r7 const 1.
    const char *walker_asm = R"(
    loop:
        ble    r2, r1, halt       ; keys exhausted?
        ld     r10, [r1 + 0]      ; probe key
        add    r1, r1, r5
        and    r11, r10, r4       ; slot index (identity hash)
    probe:
        addshf r12, r3, r11, lsl #4 ; slot address = base + i*16
        ld     r13, [r12 + 0]     ; slot key
        cmp    r14, r13, r6       ; empty -> miss
        ble    r7, r14, loop
        cmp    r14, r13, r10      ; match?
        ble    r14, r0, next
        ld     r15, [r12 + 8]     ; payload
        add    r20, r20, r15      ; sum += payload
        add    r21, r21, r7       ; ++matches
        ba     loop
    next:
        add    r11, r11, r7       ; linear probe with wrap
        and    r11, r11, r4
        ba     probe
    )";

    isa::Program prog;
    std::string error;
    if (!isa::assemble("open-table-walker", isa::UnitKind::Walker,
                       walker_asm, error, prog)) {
        std::fprintf(stderr, "assembly failed: %s\n", error.c_str());
        return 1;
    }
    prog.setRelaxedLegality(false);
    std::string verror;
    if (!prog.validate(verror)) {
        std::fprintf(stderr, "invalid program: %s\n",
                     verror.c_str());
        return 1;
    }

    prog.setReg(1, Addr(reinterpret_cast<std::uintptr_t>(
                      keys.data())));
    prog.setReg(2, Addr(reinterpret_cast<std::uintptr_t>(
                      keys.data() + keys.size())));
    prog.setReg(3, Addr(reinterpret_cast<std::uintptr_t>(
                      table.slots)));
    prog.setReg(4, table.mask);
    prog.setReg(5, 8);
    prog.setReg(6, kEmptySlot);
    prog.setReg(7, 1);

    std::printf("hand-written walker (%u instructions):\n%s\n",
                prog.size(), prog.disassemble().c_str());

    sim::MemSystem mem;
    accel::Unit unit("custom-walker", prog, mem, nullptr, nullptr);
    Cycle now = 0;
    while (!unit.halted())
        unit.tick(now++);

    // Scalar reference.
    u64 ref_sum = 0;
    u64 ref_matches = 0;
    for (u64 k : keys) {
        u64 p = table.lookup(k);
        if (p != kEmptySlot) {
            ref_sum += p;
            ++ref_matches;
        }
    }

    std::printf("widx:   sum=%llu matches=%llu in %llu cycles "
                "(%.1f cycles/probe)\n",
                (unsigned long long)unit.reg(20),
                (unsigned long long)unit.reg(21),
                (unsigned long long)now,
                double(now) / double(keys.size()));
    std::printf("scalar: sum=%llu matches=%llu  -> %s\n",
                (unsigned long long)ref_sum,
                (unsigned long long)ref_matches,
                unit.reg(20) == ref_sum &&
                        unit.reg(21) == ref_matches
                    ? "ok"
                    : "MISMATCH");
    return unit.reg(20) == ref_sum ? 0 : 1;
}
