/**
 * @file
 * Quickstart: build a hash index, offload its probes to Widx, and
 * compare against the scalar reference and the simulated OoO core.
 *
 *   $ ./quickstart
 *
 * Walks through the full public API in ~80 lines:
 *   1. put a build relation and a probe relation into columns;
 *   2. build a chained hash index (Section 2.2 layout);
 *   3. describe the offload (Section 4.3 configuration registers);
 *   4. run it on the Widx engine and on the baseline core model;
 *   5. verify the matches and compare cycles per tuple.
 */

#include <cstdio>

#include "accel/engine.hh"
#include "common/arena.hh"
#include "common/rng.hh"
#include "cpu/probe_run.hh"
#include "workload/distributions.hh"

using namespace widx;

int
main()
{
    // 1. Data: a 64K-tuple build relation (unique keys) and 100K
    //    uniform probe keys.
    const u64 tuples = 64 * 1024;
    const u64 probes = 100 * 1024;
    Arena arena;
    Rng rng(42);

    db::Column build("build.key", db::ValueKind::U64, arena, tuples);
    for (u64 k : wl::shuffledDenseKeys(tuples, rng))
        build.push(k);
    db::Column probe("probe.key", db::ValueKind::U64, arena, probes);
    for (u64 k : wl::uniformKeys(probes, tuples, rng))
        probe.push(k);

    // 2. Index: one bucket per tuple, robust multiply-free hashing.
    db::IndexSpec ispec;
    ispec.buckets = tuples;
    ispec.hashFn = db::HashFn::monetdbRobust();
    db::HashIndex index(ispec, arena);
    index.buildFromColumn(build);
    std::printf("index: %llu entries, %.1f avg nodes/bucket, "
                "%.2f MB footprint\n",
                (unsigned long long)index.entries(),
                index.avgBucketDepth(),
                double(index.footprintBytes()) / 1048576.0);

    // 3. Offload description: the contents of Widx's configuration
    //    registers (input table, hash table, results region, NULL).
    u64 *results = arena.makeArray<u64>(2 * (probes + 8));
    accel::OffloadSpec offload;
    offload.index = &index;
    offload.probeKeys = &probe;
    offload.outBase = Addr(reinterpret_cast<std::uintptr_t>(results));

    // 4a. Run on Widx: one dispatcher, four walkers, one producer.
    accel::EngineConfig config;
    config.numWalkers = 4;
    accel::EngineResult widx = accel::runOffload(offload, config);

    // 4b. Run the same probe loop on the baseline OoO core.
    cpu::ProbeRunConfig base;
    cpu::CoreResult ooo = cpu::runProbeLoop(index, probe, base);

    // 5. Verify functionally and report.
    u64 expected = 0;
    for (RowId r = 0; r < probe.size(); ++r)
        expected += index.probe(probe.at(r));
    std::printf("matches: widx=%llu reference=%llu %s\n",
                (unsigned long long)widx.matches,
                (unsigned long long)expected,
                widx.matches == expected ? "(ok)" : "(MISMATCH)");

    std::printf("widx (4 walkers): %.1f cycles/tuple "
                "(comp %.0f%%, mem %.0f%%, idle %.0f%%)\n",
                widx.cyclesPerTuple,
                100.0 * double(widx.walkers.comp) /
                    double(widx.walkers.total()),
                100.0 * double(widx.walkers.mem) /
                    double(widx.walkers.total()),
                100.0 * widx.walkerIdleFraction());
    std::printf("OoO core:         %.1f cycles/tuple\n",
                ooo.cyclesPerTuple);
    std::printf("indexing speedup: %.2fx (paper: 3.1x geomean on "
                "DSS queries)\n",
                ooo.cyclesPerTuple / widx.cyclesPerTuple);
    return widx.matches == expected ? 0 : 1;
}
