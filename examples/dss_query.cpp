/**
 * @file
 * End-to-end DSS query example (the Figure 1 scenario): join two
 * relations through a hash index, run the probe phase on the
 * mini-DBMS operators, then offload the same indexing work to Widx
 * and project the whole-query speedup the way Section 6.2 does.
 *
 *   SQL: SELECT A.payload FROM A, B WHERE A.age = B.age
 */

#include <cstdio>

#include "accel/engine.hh"
#include "common/arena.hh"
#include "common/rng.hh"
#include "cpu/probe_run.hh"
#include "db/aggregate.hh"
#include "db/hash_join.hh"
#include "db/plan.hh"
#include "db/scan.hh"
#include "workload/distributions.hh"

using namespace widx;

int
main()
{
    Arena arena;
    Rng rng(7);

    // Table A: 256K rows with an "age"-like key and a payload;
    // Table B: 1M rows probing A.
    const u64 a_rows = 256 * 1024;
    const u64 b_rows = 1024 * 1024;
    db::Table a("A");
    db::Column &a_age =
        a.addColumn("age", db::ValueKind::U64, arena, a_rows);
    db::Column &a_pay =
        a.addColumn("payload", db::ValueKind::U64, arena, a_rows);
    for (u64 k : wl::shuffledDenseKeys(a_rows, rng)) {
        a_age.push(k);
        a_pay.push(k * 10);
    }
    db::Table b("B");
    db::Column &b_age =
        b.addColumn("age", db::ValueKind::U64, arena, b_rows);
    for (u64 k : wl::uniformKeys(b_rows, a_rows, rng))
        b_age.push(k);

    // Step 1+2 of Figure 1 on the host, with Fig. 2a attribution:
    // build the index on A (the smaller table), probe with B.
    db::PlanBreakdown bd;
    db::IndexSpec ispec;
    ispec.buckets = a_rows;
    ispec.hashFn = db::HashFn::monetdbRobust();
    u64 matches = 0;
    {
        db::PlanTimer t(bd, db::OpClass::Index);
        db::JoinResult jr =
            db::hashJoin(a_age, b_age, ispec, arena, false);
        matches = jr.matches;
    }
    {
        db::PlanTimer t(bd, db::OpClass::Scan);
        (void)db::scanCount(b_age,
                            db::RangePredicate{1, a_rows / 2});
    }
    {
        db::PlanTimer t(bd, db::OpClass::Other);
        std::vector<RowId> rows;
        for (RowId r = 0; r < a_rows; ++r)
            rows.push_back(r);
        (void)db::aggregateSum(a_pay, rows);
    }

    const double f_index = bd.fraction(db::OpClass::Index);
    std::printf("host query: %llu matches; breakdown Index %.0f%% "
                "Scan %.0f%% Other %.0f%%\n",
                (unsigned long long)matches, 100.0 * f_index,
                100.0 * bd.fraction(db::OpClass::Scan),
                100.0 * bd.fraction(db::OpClass::Other));

    // Simulate the indexing portion: OoO baseline vs Widx offload.
    db::HashIndex index(ispec, arena);
    index.buildFromColumn(a_age);

    // Sample the probes (SimFlex-style) to keep simulation fast.
    const u64 sample = 150 * 1024;
    db::Column probe("B.sample", db::ValueKind::U64, arena, sample);
    for (u64 i = 0; i < sample; ++i)
        probe.push(b_age.at(i));

    cpu::ProbeRunConfig base;
    cpu::CoreResult ooo = cpu::runProbeLoop(index, probe, base);

    u64 *out = arena.makeArray<u64>(2 * (sample + 8));
    accel::OffloadSpec off;
    off.index = &index;
    off.probeKeys = &probe;
    off.outBase = Addr(reinterpret_cast<std::uintptr_t>(out));
    accel::EngineConfig cfg;
    cfg.numWalkers = 4;
    accel::EngineResult widx = accel::runOffload(off, cfg);

    const double s_index = ooo.cyclesPerTuple / widx.cyclesPerTuple;
    const double s_query = 1.0 / ((1.0 - f_index) + f_index / s_index);
    std::printf("indexing speedup (Widx 4 walkers vs OoO): %.2fx\n",
                s_index);
    std::printf("projected whole-query speedup (Section 6.2 "
                "Amdahl): %.2fx\n",
                s_query);
    return 0;
}
