/**
 * @file
 * Index server demo: the persistent sharded index service fielding
 * small concurrent probe requests from several client threads — the
 * north star's many-small-queries regime, in miniature.
 *
 *   $ ./example_index_server
 *
 * Walks through the service API:
 *   1. load a build relation into a column;
 *   2. start an IndexService owning 4 hash-range shards placed by
 *      the host topology (NodeBound first-touch builds), with 4
 *      persistent walker threads parked between requests and
 *      shard-affine dispatch routing (each walker homes on the
 *      shards of its node, stealing across shards when idle);
 *   3. fire closed-loop clients that submit small probe / count /
 *      join requests and block on their tickets;
 *   4. verify a sample request byte-for-byte against the
 *      single-threaded probeBatch reference and print the service's
 *      traffic counters;
 *   5. print the per-kind latency report (end-to-end percentiles
 *      plus the queue-wait vs drain-time split that attributes
 *      admission-coalescing delay) and drive a short *open-loop*
 *      phase — Poisson arrivals at a fixed rate, no waiting between
 *      submissions — whose percentiles are free of coordinated
 *      omission (a stalled walker can't stall this generator);
 *   6. go fully async: one client thread parks thousands of
 *      requests in the service through submitAsync + a
 *      CompletionQueue and reaps completions in batches — the
 *      submission surface everything above is sugar over;
 *   7. serve sockets: a TcpIndexServer (epoll event loop + batch
 *      completion reaper) fields the same requests over a
 *      length-prefixed binary protocol from a TcpIndexClient on
 *      loopback, including an open-loop ladder over the real wire;
 *   8. demonstrate graceful degradation: a second service with
 *      SLO-driven adaptive admission, per-request deadlines, and
 *      the walker watchdog, driven in overload bursts — then the
 *      shutdown contract (Ctrl-C or natural end): stop() drains
 *      in-flight windows, cancels queued ones (completions arrive
 *      with Status::Cancelled, never hang), and dumps the final
 *      accounting.
 *
 * Observability runs through every phase: the service registers its
 * metrics on an `obs::MetricsRegistry` (scraped over the wire in the
 * TCP phase), requests carry trace ids into a shared
 * `obs::TraceRing`, and SIGUSR1 dumps the ring as
 * chrome://tracing-loadable JSON to `widx_trace.json` (`--smoke`
 * raises it once so CI exercises the dump).
 *
 * `--smoke` shrinks every phase for CI (bounded seconds, same code
 * paths). `--serve <port>` skips the demo phases and just serves the
 * TCP front-end (with the Stats scrape kind) on a fixed port until
 * SIGINT/SIGTERM — the mode the CI scrape step drives `widx_stats`
 * against.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "common/arena.hh"
#include "common/rng.hh"
#include "net/open_loop_net.hh"
#include "net/server.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "service/index_service.hh"
#include "service/open_loop.hh"
#include "workload/distributions.hh"

using namespace widx;

namespace {
std::atomic<bool> g_interrupted{false};
std::atomic<bool> g_dumpTrace{false};
}

int
main(int argc, char **argv)
{
    bool smoke = false;
    int servePort = -1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--serve") == 0 &&
                   i + 1 < argc) {
            servePort = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--serve <port>]\n",
                         argv[0]);
            return 2;
        }
    }

    // 1. Data: a 256K-tuple build relation (unique keys) and a pool
    //    of probe keys the clients draw from.
    const u64 tuples = smoke ? 64 * 1024 : 256 * 1024;
    Arena arena;
    Rng rng(42);

    db::Column build("build.key", db::ValueKind::U64, arena, tuples);
    for (u64 k : wl::shuffledDenseKeys(tuples, rng))
        build.push(k);
    std::vector<u64> probePool = wl::uniformKeys(1u << 20, tuples, rng);

    // 2. Service: 4 hash-range shards (each with its own bucket+tag
    //    arena, first-touched on its target node), 4 walkers parked
    //    on a condvar between requests, shard-affine routing on.
    const Topology &topo = Topology::host();
    std::printf("topology: %u node(s), %u usable CPU(s)\n",
                topo.nodes(), topo.cpus());
    db::IndexSpec ispec;
    ispec.buckets = tuples;
    ispec.hashFn = db::HashFn::monetdbRobust();
    sw::ServiceConfig cfg;
    cfg.shards = 4;
    cfg.walkers = 4;
    cfg.pipeline.adaptiveTags = true;
    cfg.numa = sw::NumaPolicy::NodeBound;
    cfg.affineRouting = true;
    // Observability: hardware-counter sampling every 32nd window
    // (degrades to zeros where perf is denied) and a span-trace
    // ring shared with the TCP server's reaper.
    cfg.perfSamplePeriod = 32;
    auto trace = std::make_shared<obs::TraceRing>(8192);
    cfg.trace = trace;
    // Serve-only mode runs the adaptive admission controller so a
    // scrape shows the full widx_admission_* family set; the demo
    // phases keep the static path their printed numbers assume.
    if (servePort >= 0)
        cfg.admission.adaptive = true;
    sw::IndexService service(build, ispec, cfg);
    std::printf("service: %u shards x %llu buckets, %u walkers, "
                "%.1f MB footprint\n",
                service.shards(),
                (unsigned long long)service.index().shard(0)
                    .numBuckets(),
                service.walkers(),
                double(service.index().footprintBytes()) / 1048576.0);
    for (unsigned w = 0; w < service.walkers(); ++w) {
        std::printf("  walker %u home shards:", w);
        for (unsigned s : service.homeShards(w))
            std::printf(" %u(node %u)", s,
                        service.index().shardNode(s));
        std::printf("\n");
    }

    // Everything ad-hoc above is also exported uniformly: the
    // registry pulls service state through a collector at scrape
    // time (zero hot-path cost) and serves it as Prometheus text
    // exposition — locally below, and over the wire via the Stats
    // request kind.
    obs::MetricsRegistry registry;
    service.registerMetrics(registry);
    std::signal(SIGUSR1, [](int) { g_dumpTrace.store(true); });
    auto dumpTraceIfAsked = [&] {
        if (!g_dumpTrace.exchange(false))
            return;
        const std::string json = trace->renderChromeTrace();
        FILE *f = std::fopen("widx_trace.json", "w");
        if (!f) {
            std::fprintf(stderr, "trace: cannot open "
                                 "widx_trace.json for writing\n");
            return;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("trace: wrote %zu bytes to widx_trace.json "
                    "(load it in chrome://tracing)\n",
                    json.size());
    };

    if (servePort >= 0) {
        // Serve-only mode for scrapers: the TCP front-end with the
        // shared registry and trace ring, parked until a signal.
        net::TcpServerOptions sopt;
        sopt.port = u16(servePort);
        sopt.metrics = &registry;
        sopt.trace = trace;
        net::TcpIndexServer server(service, sopt);
        // One warm-up probe so a scrape of a fresh server already
        // carries latency samples (idle request kinds stay out of
        // the exposition) and the trace ring has a spanned request.
        sw::SubmitOptions warmOpt;
        warmOpt.traceId = 0x3e41;
        service
            .submit(sw::RequestKind::Probe,
                    {probePool.data(), 256}, warmOpt)
            .get();
        std::signal(SIGINT, [](int) { g_interrupted.store(true); });
        std::signal(SIGTERM, [](int) { g_interrupted.store(true); });
        std::printf("serving on 127.0.0.1:%u (scrape with "
                    "widx_stats --port %u; SIGUSR1 dumps "
                    "widx_trace.json; SIGINT/SIGTERM exits)\n",
                    server.port(), server.port());
        std::fflush(stdout);
        while (!g_interrupted.load()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
            dumpTraceIfAsked();
        }
        server.stop();
        return 0;
    }

    // 3. Closed-loop clients: each submits back-to-back small
    //    requests (a handful of keys — the admission batcher
    //    coalesces concurrent tails into shared dispatch windows).
    const unsigned clients = 4;
    const unsigned requestsPerClient = smoke ? 250 : 2000;
    const std::size_t requestKeys = 16;
    std::vector<std::thread> threads;
    std::vector<u64> clientMatches(clients, 0);
    const auto start = std::chrono::steady_clock::now();
    for (unsigned c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            std::size_t base = std::size_t(c) * 257 * requestKeys;
            u64 m = 0;
            for (unsigned r = 0; r < requestsPerClient; ++r) {
                base = (base + requestKeys) %
                       (probePool.size() - requestKeys);
                m += service.count(
                    {probePool.data() + base, requestKeys});
            }
            clientMatches[c] = m;
        });
    for (auto &t : threads)
        t.join();
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    // 4a. Verify one request against the single-threaded reference.
    //     The sample request is traced: its lifecycle spans (submit
    //     / window seal / first claim / drain done) land in the
    //     ring the SIGUSR1 dump serializes.
    const std::span<const u64> sample{probePool.data(), 4096};
    sw::SubmitOptions sampleOpt;
    sampleOpt.traceId = 0x5a11;
    sw::ServiceResult got =
        service.submit(sw::RequestKind::Probe, sample, sampleOpt)
            .get();
    std::vector<sw::MatchRec> want;
    u64 want_n = 0;
    // A flat reference index over the same column and geometry.
    Arena refArena;
    db::HashIndex ref(ispec, refArena);
    ref.buildFromColumn(build);
    want_n = ref.probeBatch(
        sample, [&](std::size_t i, u64 key, u64 payload) {
            want.push_back({i, key, payload});
        });
    bool identical = got.matches == want_n &&
                     got.recs.size() == want.size();
    for (std::size_t i = 0; identical && i < want.size(); ++i)
        identical = got.recs[i].i == want[i].i &&
                    got.recs[i].key == want[i].key &&
                    got.recs[i].payload == want[i].payload;
    std::printf("sample request: %llu matches, %s the probeBatch "
                "reference\n",
                (unsigned long long)got.matches,
                identical ? "byte-identical to" : "MISMATCH vs");

    // 4b. Traffic counters.
    const sw::ServiceStats stats = service.stats();
    const u64 totalReqs = u64(clients) * requestsPerClient;
    std::printf("served %llu requests (%zu keys each) from %u "
                "clients in %.2fs: %.0f req/s, %.2f M keys/s\n",
                (unsigned long long)totalReqs, requestKeys, clients,
                secs, double(totalReqs) / secs,
                double(totalReqs * requestKeys) / secs / 1e6);
    std::printf("dispatch windows: %llu (%llu coalesced across "
                "requests, %llu shard-affine, %llu stolen), tag "
                "reject rate %.1f%%\n",
                (unsigned long long)stats.windows,
                (unsigned long long)stats.coalescedWindows,
                (unsigned long long)stats.affineWindows,
                (unsigned long long)stats.stolenWindows,
                100.0 * service.index().tagStats().rejectRate());

    // 4c. Latency report: every request was timestamped at submit,
    //     first window claim, and publication, so end-to-end splits
    //     exactly into queue-wait (where coalescing hold lands) and
    //     drain-time.
    std::printf("latency (closed-loop phase):\n"
                "  %-6s %8s %9s %9s %9s %9s %11s %11s\n", "kind",
                "count", "p50", "p99", "p99.9", "max", "queue-mean",
                "drain-mean");
    const char *kindName[] = {"count", "probe", "join"};
    for (sw::RequestKind k :
         {sw::RequestKind::Count, sw::RequestKind::Probe,
          sw::RequestKind::Join}) {
        const sw::KindLatency &kl = stats.latencyFor(k);
        if (kl.endToEnd.count == 0)
            continue;
        std::printf("  %-6s %8llu %8.1fu %8.1fu %8.1fu %8.1fu "
                    "%10.1fu %10.1fu\n",
                    kindName[unsigned(k)],
                    (unsigned long long)kl.endToEnd.count,
                    double(kl.endToEnd.p50Ns) / 1e3,
                    double(kl.endToEnd.p99Ns) / 1e3,
                    double(kl.endToEnd.p999Ns) / 1e3,
                    double(kl.endToEnd.maxNs) / 1e3,
                    kl.queueWait.meanNs() / 1e3,
                    kl.drainTime.meanNs() / 1e3);
    }

    // 5. Open-loop phase: arrivals at a fixed rate, submissions
    //    never wait for completions, latency measured from each
    //    request's *scheduled* arrival (no coordinated omission).
    service.resetLatencyStats();
    sw::OpenLoopOptions ol;
    ol.ratePerSec = smoke ? 10000 : 20000;
    ol.requests = smoke ? 1000 : 5000;
    ol.keysPerRequest = requestKeys;
    sw::OpenLoopReport rep = sw::runOpenLoop(service, probePool, ol);
    std::printf("open-loop phase: %llu arrivals at %.0f/s "
                "(achieved %.0f/s), %llu shed, %llu timed out\n"
                "  p50 %.1fus  p90 %.1fus  p99 %.1fus  p99.9 "
                "%.1fus  max %.1fus\n",
                (unsigned long long)rep.scheduled, ol.ratePerSec,
                rep.achievedRate,
                (unsigned long long)rep.shedClientCap,
                (unsigned long long)rep.timedOut,
                double(rep.latency.p50Ns) / 1e3,
                double(rep.latency.p90Ns) / 1e3,
                double(rep.latency.p99Ns) / 1e3,
                double(rep.latency.p999Ns) / 1e3,
                double(rep.latency.maxNs) / 1e3);

    // 6. Async submission: count()/probe()/join() and the open-loop
    //    generator above are all sugar over this — submitAsync hands
    //    the request to the walkers and returns immediately; the
    //    completion lands on a CompletionQueue tagged with the
    //    caller's id. One thread parks thousands of requests before
    //    reaping anything, then drains the queue in batches.
    const std::size_t kAsync = smoke ? 1200 : 4096;
    auto cq = std::make_shared<sw::CompletionQueue>();
    const auto asyncT0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kAsync; ++i) {
        const std::size_t base =
            (i * 131 * requestKeys) % (probePool.size() - requestKeys);
        service.submitAsync(sw::RequestKind::Count,
                            {probePool.data() + base, requestKeys},
                            {}, cq, i);
    }
    const u64 liveAfterSubmit = service.stats().liveRequests;
    std::vector<sw::Completion> asyncDone;
    std::size_t reapBatches = 0;
    while (asyncDone.size() < kAsync) {
        const std::size_t before = asyncDone.size();
        cq->reap(asyncDone, kAsync, std::chrono::milliseconds(100));
        reapBatches += asyncDone.size() > before;
    }
    const double asyncSecs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - asyncT0)
            .count();
    u64 asyncMatches = 0;
    for (const sw::Completion &c : asyncDone)
        asyncMatches += c.result.matches;
    std::printf("async phase: %zu requests from one thread (%llu "
                "still live after the last submit), reaped in %zu "
                "batches, %llu matches, %.0f req/s\n",
                kAsync, (unsigned long long)liveAfterSubmit,
                reapBatches, (unsigned long long)asyncMatches,
                double(kAsync) / asyncSecs);

    // 7. TCP front-end: the same service behind an epoll socket
    //    server speaking the length-prefixed binary protocol. One
    //    blocking call() round-trips the sample request; then the
    //    open-loop generator reruns over the real wire through the
    //    client's completion queue (same driver as phase 5, latency
    //    now including both wire directions).
    {
        net::TcpServerOptions topt;
        topt.metrics = &registry;
        topt.trace = trace;
        net::TcpIndexServer tcpServer(service, topt);
        net::TcpIndexClient tcpClient("127.0.0.1", tcpServer.port());
        const sw::ServiceResult wired =
            tcpClient.call(sw::RequestKind::Count, sample);
        std::printf("tcp phase: 127.0.0.1:%u, call(count, %zu keys) "
                    "-> %llu matches (%s the local sample)\n",
                    tcpServer.port(), sample.size(),
                    (unsigned long long)wired.matches,
                    wired.matches == got.matches ? "matches"
                                                 : "MISMATCH vs");
        if (wired.matches != got.matches)
            identical = false;
        sw::OpenLoopOptions nol;
        nol.ratePerSec = smoke ? 4000 : 10000;
        nol.requests = smoke ? 500 : 4000;
        nol.keysPerRequest = requestKeys;
        nol.sloNs = 50'000'000;
        const sw::OpenLoopReport nrep =
            net::runOpenLoopNet(tcpClient, probePool, nol);
        // Scrape the registry over the same socket: the Stats wire
        // kind answers from the event loop without touching the
        // admission windows it measures.
        const std::string expo = tcpClient.stats();
        std::size_t families = 0;
        for (std::size_t p = expo.find("# TYPE ");
             p != std::string::npos; p = expo.find("# TYPE ", p + 1))
            ++families;
        std::printf("tcp stats scrape: %zu bytes of Prometheus "
                    "exposition, %zu metric families\n",
                    expo.size(), families);
        tcpClient.close();
        tcpServer.stop();
        const net::TcpServerStats nst = tcpServer.stats();
        std::printf("tcp open-loop: %llu arrivals at %.0f/s "
                    "(achieved %.0f/s), %llu ok, %llu shed, "
                    "%llu timed out\n"
                    "  p50 %.1fus  p99 %.1fus  max %.1fus  | server: "
                    "%llu reqs, %llu resps, %llu proto errors\n",
                    (unsigned long long)nrep.scheduled,
                    nol.ratePerSec, nrep.achievedRate,
                    (unsigned long long)nrep.completed,
                    (unsigned long long)nrep.shedClientCap,
                    (unsigned long long)nrep.timedOut,
                    double(nrep.latency.p50Ns) / 1e3,
                    double(nrep.latency.p99Ns) / 1e3,
                    double(nrep.latency.maxNs) / 1e3,
                    (unsigned long long)nst.requests,
                    (unsigned long long)nst.responses,
                    (unsigned long long)nst.protocolErrors);
    }

    // 8. Graceful degradation: a second service with the adaptive
    //    admission controller, per-request deadlines, and the
    //    walker watchdog on, driven in overload bursts. Ctrl-C at
    //    any point between bursts (or the natural end of the
    //    phase) triggers the shutdown contract: stop() cancels the
    //    queued windows — their tickets complete immediately with
    //    Status::Cancelled — in-flight drains finish, the walkers
    //    join, and the final stats dump shows where every request
    //    went. No waiter is ever left hanging.
    std::signal(SIGINT, [](int) { g_interrupted.store(true); });
    sw::ServiceConfig ocfg;
    ocfg.shards = 4;
    ocfg.walkers = 4;
    ocfg.admission.adaptive = true; // queue-wait p99 -> 2 ms
    ocfg.watchdogPeriodNs = 20'000'000;
    sw::IndexService overloaded(build, ispec, ocfg);
    sw::OpenLoopOptions oo;
    oo.ratePerSec = 120000;
    oo.requests = smoke ? 1500 : 6000;
    oo.keysPerRequest = requestKeys;
    oo.deadlineNs = 10'000'000; // give up on a request past 10 ms
    oo.sloNs = 5'000'000;       // goodput = Ok within 5 ms
    const int bursts = smoke ? 1 : 3;
    std::printf("overload phase (Ctrl-C to drain early):\n");
    for (int burst = 0; burst < bursts && !g_interrupted.load();
         ++burst) {
        oo.seed = u64(burst + 1);
        sw::OpenLoopReport orep =
            sw::runOpenLoop(overloaded, probePool, oo);
        std::printf("  burst %d: offered %.0f/s, goodput %.0f/s "
                    "(%llu ok-in-SLO / %llu submitted), "
                    "%llu rejected, %llu expired\n",
                    burst, orep.offeredRate, orep.goodputRate,
                    (unsigned long long)orep.goodput,
                    (unsigned long long)orep.submitted,
                    (unsigned long long)orep.rejected,
                    (unsigned long long)orep.expired);
    }

    // Park a burst of async requests, then stop() mid-flight: every
    // tag still yields exactly one completion — drained Ok or
    // Cancelled — so the reap loop below always terminates.
    constexpr std::size_t kParked = 64;
    auto drainCq = std::make_shared<sw::CompletionQueue>();
    for (std::size_t i = 0; i < kParked; ++i)
        overloaded.submitAsync(sw::RequestKind::Count, sample, {},
                               drainCq, i);
    overloaded.stop();
    unsigned drained = 0, cancelled = 0;
    std::vector<sw::Completion> parked;
    while (parked.size() < kParked)
        drainCq->reap(parked, kParked,
                      std::chrono::milliseconds(100));
    for (const sw::Completion &c : parked)
        (c.result.status == sw::Status::Cancelled ? cancelled
                                                  : drained)++;
    const sw::ServiceStats fin = overloaded.stats();
    std::printf(
        "drain: 64 parked requests -> %u drained, %u cancelled\n"
        "final stats: %llu ok, %llu rejected, %llu expired, "
        "%llu cancelled, %llu walker stalls\n"
        "admission: hold %llu keys, budget %llu keys, "
        "%llu adjustments (%llu down), last window p99 %.1fus\n",
        drained, cancelled,
        (unsigned long long)fin.completedOk,
        (unsigned long long)fin.rejected,
        (unsigned long long)fin.expired,
        (unsigned long long)fin.cancelled,
        (unsigned long long)fin.walkerStalls,
        (unsigned long long)fin.admission.holdKeys,
        (unsigned long long)fin.admission.budgetKeys,
        (unsigned long long)fin.admission.adjustments,
        (unsigned long long)fin.admission.decreases,
        double(fin.admission.lastWindowP99Ns) / 1e3);

    // Trace dump: SIGUSR1 at any point marks the ring for dumping;
    // smoke raises it here so CI exercises the chrome://tracing
    // export every run.
    if (smoke)
        std::raise(SIGUSR1);
    dumpTraceIfAsked();
    return identical ? 0 : 1;
}
