/**
 * @file
 * Hash-join-kernel offload with command-line control: pick the index
 * size and walker count, inspect the generated unit programs, and
 * compare Widx against both baseline cores.
 *
 *   $ ./join_kernel_offload [small|medium|large] [walkers] [--asm]
 */

#include <cstdio>
#include <cstring>

#include "accel/codegen.hh"
#include "accel/engine.hh"
#include "cpu/probe_run.hh"
#include "workload/join_kernel.hh"

using namespace widx;

int
main(int argc, char **argv)
{
    wl::KernelSize size = wl::KernelSize::medium();
    unsigned walkers = 4;
    bool show_asm = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "small"))
            size = wl::KernelSize::small();
        else if (!std::strcmp(argv[i], "medium"))
            size = wl::KernelSize::medium();
        else if (!std::strcmp(argv[i], "large"))
            size = wl::KernelSize::large();
        else if (!std::strcmp(argv[i], "--asm"))
            show_asm = true;
        else
            walkers = unsigned(std::atoi(argv[i]));
    }
    if (walkers == 0 || walkers > 8) {
        std::fprintf(stderr, "walker count must be 1..8\n");
        return 1;
    }

    std::printf("kernel %s: %llu tuples, %llu sampled probes\n",
                size.name, (unsigned long long)size.tuples,
                (unsigned long long)size.probes);
    wl::KernelDataset data(size);

    accel::OffloadSpec spec;
    spec.index = data.index.get();
    spec.probeKeys = data.probeKeys.get();
    spec.outBase = data.outBase();

    if (show_asm) {
        std::printf("\n-- dispatcher --\n%s",
                    accel::generateDispatcher(spec, 0, 1)
                        .disassemble()
                        .c_str());
        std::printf("\n-- walker --\n%s",
                    accel::generateWalker(spec).disassemble().c_str());
        std::printf("\n-- producer --\n%s\n",
                    accel::generateProducer(spec)
                        .disassemble()
                        .c_str());
    }

    accel::EngineConfig cfg;
    cfg.numWalkers = walkers;
    accel::EngineResult widx = accel::runOffload(spec, cfg);

    cpu::ProbeRunConfig base;
    base.core = cpu::CoreParams::ooo();
    cpu::CoreResult ooo =
        cpu::runProbeLoop(*data.index, *data.probeKeys, base);
    base.core = cpu::CoreParams::inorder();
    cpu::CoreResult inorder =
        cpu::runProbeLoop(*data.index, *data.probeKeys, base);

    std::printf("\n%-22s %10s %10s\n", "engine", "cyc/tuple",
                "speedup");
    std::printf("%-22s %10.1f %9.2fx\n", "in-order core",
                inorder.cyclesPerTuple,
                ooo.cyclesPerTuple / inorder.cyclesPerTuple);
    std::printf("%-22s %10.1f %9.2fx\n", "OoO core",
                ooo.cyclesPerTuple, 1.0);
    char label[32];
    std::snprintf(label, sizeof(label), "widx (%u walker%s)",
                  walkers, walkers > 1 ? "s" : "");
    std::printf("%-22s %10.1f %9.2fx\n", label, widx.cyclesPerTuple,
                ooo.cyclesPerTuple / widx.cyclesPerTuple);
    std::printf("\nwidx walker cycles: comp %llu, mem %llu, tlb "
                "%llu, idle %llu; matches %llu; config load %llu "
                "cycles\n",
                (unsigned long long)widx.walkers.comp,
                (unsigned long long)widx.walkers.mem,
                (unsigned long long)widx.walkers.tlb,
                (unsigned long long)(widx.walkers.idle +
                                     widx.walkers.backpressure),
                (unsigned long long)widx.matches,
                (unsigned long long)widx.configCycles);
    return 0;
}
