/**
 * @file
 * Software-walkers example: the paper's insight on real hardware.
 *
 * Builds a DRAM-resident index and probes it with the four software
 * schedules (scalar, group prefetch, AMAC, C++20 coroutines),
 * reporting wall-clock throughput. On most machines the interleaved
 * schedules win by 2-5x — the same inter-key parallelism Widx
 * harvests with hardware walker units.
 */

#include <chrono>
#include <cstdio>

#include "common/arena.hh"
#include "common/rng.hh"
#include "swwalkers/coro.hh"
#include "swwalkers/probers.hh"
#include "workload/distributions.hh"

using namespace widx;

namespace {

double
mtuplesPerSec(std::size_t keys, double seconds)
{
    return double(keys) / seconds / 1e6;
}

template <typename Prober>
void
run(const char *name, const Prober &prober,
    const std::vector<u64> &keys, u64 expected, double base_mts)
{
    auto start = std::chrono::steady_clock::now();
    u64 matches = prober.probeAll(keys);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    double mts = mtuplesPerSec(keys.size(), secs);
    std::printf("%-24s %8.1f Mtuples/s  %5.2fx  %s\n", name, mts,
                base_mts > 0 ? mts / base_mts : 1.0,
                matches == expected ? "" : "MISMATCH");
}

} // namespace

int
main()
{
    const u64 tuples = 8u << 20; // ~384 MB footprint
    const u64 probes = 2u << 20;
    std::printf("building %llu-tuple index (DRAM-resident)...\n",
                (unsigned long long)tuples);

    Arena arena;
    Rng rng(42);
    db::Column build("b", db::ValueKind::U64, arena, tuples);
    for (u64 k : wl::shuffledDenseKeys(tuples, rng))
        build.push(k);
    db::IndexSpec spec;
    spec.buckets = tuples;
    spec.hashFn = db::HashFn::monetdbRobust();
    db::HashIndex index(spec, arena);
    index.buildFromColumn(build);

    std::vector<u64> keys = wl::uniformKeys(probes, tuples, rng);

    // Inline, untagged Listing 1 baseline.
    sw::ScalarProber scalar(index, {.batch = 0, .tagged = false});
    u64 expected = scalar.probeAll(keys);

    // Measure the scalar baseline.
    auto start = std::chrono::steady_clock::now();
    scalar.probeAll(keys);
    double scalar_secs = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    double base = mtuplesPerSec(keys.size(), scalar_secs);

    std::printf("%-24s %8s %18s\n", "prober", "rate", "vs scalar");
    std::printf("%-24s %8.1f Mtuples/s  1.00x\n",
                "scalar (Listing 1)", base);
    run("scalar batched+tagged",
        sw::ScalarProber(index, {}), keys, expected, base);
    run("group prefetch (G=16)",
        sw::GroupPrefetchProber(index, 16), keys, expected, base);
    run("AMAC (W=8)", sw::AmacProber(index, 8), keys, expected,
        base);
    run("coroutines (W=8)", sw::CoroProber(index, 8), keys, expected,
        base);
    return 0;
}
