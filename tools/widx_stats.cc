/**
 * @file
 * Stats-scrape CLI for the TCP front-end: sends one Stats frame to a
 * running index server, structurally validates the Prometheus text
 * exposition that comes back, and prints it to stdout.
 *
 * Exit status is the point: 0 only for a well-formed, non-empty
 * exposition — the CI scrape step runs this against a live
 * `example_index_server --serve` and fails the build on a malformed
 * or empty payload, so the exposition format is pinned by CI, not
 * just by the unit golden test.
 *
 *   widx_stats --port 9077 [--host 127.0.0.1] [--quiet]
 *
 * Validation is structural, not schema-bound: every non-comment line
 * must parse as `name{labels} value`, every sample must belong to a
 * family announced by a preceding `# TYPE`, histogram families must
 * close with a `+Inf` bucket and monotone cumulative counts, and at
 * least one `widx_`-prefixed family must be present. New metrics
 * never break the tool; format regressions always do.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "net/client.hh"

namespace {

bool
validName(std::string_view s)
{
    if (s.empty())
        return false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        const bool ok = std::isalpha(static_cast<unsigned char>(c)) ||
                        c == '_' || c == ':' ||
                        (i > 0 && std::isdigit(
                                      static_cast<unsigned char>(c)));
        if (!ok)
            return false;
    }
    return true;
}

/** Parse one sample line; returns false on any structural violation.
 *  On success `name` is the sample name and `le`/`hasLe` carry a
 *  histogram bucket bound, `value` the sample value. */
bool
parseSampleLine(const std::string &line, std::string &name,
                bool &hasLe, double &le, double &value)
{
    hasLe = false;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ')
        ++i;
    name = line.substr(0, i);
    if (!validName(name))
        return false;
    if (i < line.size() && line[i] == '{') {
        // Walk the label list respecting quoted values ('\\' escapes).
        ++i;
        while (i < line.size() && line[i] != '}') {
            std::size_t eq = line.find('=', i);
            if (eq == std::string::npos || eq + 1 >= line.size() ||
                line[eq + 1] != '"')
                return false;
            const std::string lname = line.substr(i, eq - i);
            if (!validName(lname))
                return false;
            std::size_t j = eq + 2;
            std::string lval;
            while (j < line.size() && line[j] != '"') {
                if (line[j] == '\\') {
                    if (j + 1 >= line.size())
                        return false;
                    ++j;
                }
                lval += line[j++];
            }
            if (j >= line.size())
                return false; // unterminated value
            if (lname == "le") {
                hasLe = true;
                le = lval == "+Inf"
                         ? std::numeric_limits<double>::infinity()
                         : std::strtod(lval.c_str(), nullptr);
            }
            ++j; // closing quote
            if (j < line.size() && line[j] == ',')
                ++j;
            i = j;
        }
        if (i >= line.size())
            return false; // unterminated label list
        ++i;              // '}'
    }
    if (i >= line.size() || line[i] != ' ')
        return false;
    const char *start = line.c_str() + i + 1;
    char *end = nullptr;
    value = std::strtod(start, &end);
    return end != start && *end == '\0';
}

/** Structural exposition check (see file comment). Returns an empty
 *  string when valid, else a description of the first violation. */
std::string
validateExposition(const std::string &text)
{
    if (text.empty())
        return "empty exposition";
    if (text.back() != '\n')
        return "exposition does not end in a newline";

    std::string family;   // current # TYPE family
    std::string type;     // its announced type
    bool sawWidx = false; // at least one widx_* family
    bool sawInf = true;   // previous histogram closed with +Inf
    double prevLe = 0;
    double prevCum = 0;
    bool inBuckets = false;

    std::size_t pos = 0;
    unsigned lineNo = 0;
    while (pos < text.size()) {
        const std::size_t nl = text.find('\n', pos);
        const std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        ++lineNo;
        auto fail = [&](const std::string &why) {
            return "line " + std::to_string(lineNo) + ": " + why +
                   ": " + line;
        };

        if (line.empty())
            return fail("blank line");
        if (line[0] == '#') {
            if (line.rfind("# HELP ", 0) == 0)
                continue;
            if (line.rfind("# TYPE ", 0) != 0)
                return fail("unknown comment form");
            if (inBuckets && !sawInf)
                return fail("previous histogram missing +Inf");
            const std::string rest = line.substr(7);
            const std::size_t sp = rest.find(' ');
            if (sp == std::string::npos)
                return fail("malformed TYPE line");
            family = rest.substr(0, sp);
            type = rest.substr(sp + 1);
            if (!validName(family))
                return fail("invalid family name");
            if (type != "counter" && type != "gauge" &&
                type != "histogram")
                return fail("unknown type");
            if (family.rfind("widx_", 0) == 0)
                sawWidx = true;
            inBuckets = false;
            sawInf = true;
            continue;
        }

        std::string name;
        bool hasLe = false;
        double le = 0, value = 0;
        if (!parseSampleLine(line, name, hasLe, le, value))
            return fail("unparsable sample");
        if (family.empty())
            return fail("sample before any # TYPE");

        if (type == "histogram") {
            if (name == family + "_bucket") {
                if (!hasLe)
                    return fail("bucket without le");
                if (inBuckets && !(le > prevLe) && !sawInf)
                    return fail("le bounds not increasing");
                if (inBuckets && !sawInf && value < prevCum)
                    return fail("cumulative count decreased");
                inBuckets = true;
                sawInf = le ==
                         std::numeric_limits<double>::infinity();
                prevLe = le;
                prevCum = value;
                continue;
            }
            if (name == family + "_sum" || name == family + "_count")
                continue;
            return fail("sample name outside histogram family");
        }
        if (name != family)
            return fail("sample name outside its family");
        if (type == "counter" && value < 0)
            return fail("negative counter");
    }
    if (inBuckets && !sawInf)
        return "final histogram missing +Inf bucket";
    if (!sawWidx)
        return "no widx_* family in the exposition";
    return {};
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    int port = 0;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string_view a = argv[i];
        if (a == "--host" && i + 1 < argc) {
            host = argv[++i];
        } else if (a == "--port" && i + 1 < argc) {
            port = std::atoi(argv[++i]);
        } else if (a == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s --port P [--host H] [--quiet]\n",
                         argv[0]);
            return 2;
        }
    }
    if (port <= 0 || port > 65535) {
        std::fprintf(stderr, "widx_stats: --port is required\n");
        return 2;
    }

    widx::net::TcpIndexClient client(host, widx::u16(port));
    const std::string text = client.stats();
    client.close();

    const std::string err = validateExposition(text);
    if (!err.empty()) {
        std::fprintf(stderr, "widx_stats: malformed exposition: %s\n",
                     err.c_str());
        return 1;
    }
    if (!quiet)
        std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
}
