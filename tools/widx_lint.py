#!/usr/bin/env python3
"""widx-lint: repo-specific concurrency invariant checker.

Checks (names usable in suppressions):

  atomic-order   Every std::atomic load/store/RMW in the tree must
                 name an explicit std::memory_order argument. An
                 implicit seq_cst on a hot path is almost always an
                 unexamined default, not a decision.

  blocking       Functions tagged `// widx-lint: event-loop` may not
                 acquire mutexes, wait on condition variables, or
                 sleep. The epoll loop's only blocking point is the
                 poll itself; anything else stalls every connection.

  seqlock        Functions tagged `// widx-lint: seqlock-writer` must
                 follow the writer protocol: first seq store publishes
                 an odd value (`... + 1`, release), last publishes the
                 matching even value (`... + 2`, release), and at
                 least one relaxed payload store lands between them.

  padded         Struct types named `*Slot` or tagged
                 `// widx-lint: padded` must carry alignas(64) /
                 alignas(kCacheBlockBytes) so two hot slots never
                 share a cache line.

  epoch-guard    Chain steps — calls to `nodeNext(...)` or
                 `bucketHeadFor(...)`, the two accessors that follow
                 a pointer another thread may be retiring — must sit
                 inside the scope of a `// widx-lint: epoch-guard`
                 marker stating who holds the epoch pin. The marker
                 covers from its target line to the end of the
                 enclosing brace scope. A marker needs a
                 justification (`-- <who holds the pin>`), and a
                 marker whose scope contains no chain step is stale
                 and reported. Accessor *definitions* (the name at
                 the start of a line, per house style) are exempt —
                 the obligation is the caller's.

Tags mark the construct on the next code line, and may carry a
`-- reason` suffix (mandatory for epoch-guard):

  // widx-lint: event-loop        (before a function definition)
  // widx-lint: seqlock-writer    (before a function definition)
  // widx-lint: padded            (before a struct definition)
  // widx-lint: epoch-guard -- why  (before a chain-step scope)

Suppressions carry a mandatory justification after ` -- `:

  code();  // widx-lint: allow(blocking) -- why this one is fine

  // widx-lint: allow(blocking) -- why the next line is fine
  // (continuation comment lines do not consume the target)
  code();

A suppression without a justification, or naming an unknown check,
is itself reported (check name `bad-suppression`) and cannot be
suppressed.

Engine: a built-in lexer (comment/string-aware) computes all
findings; when the libclang python bindings are importable
(`--engine auto`, the default, or `--engine clang`), atomic-order
findings are additionally confirmed against the AST — a flagged call
is kept only if libclang agrees the callee is a member of
std::atomic / std::atomic_flag, which filters look-alike methods on
non-atomic types. libclang can only remove findings, never add them,
so corpus expectations are engine-independent. `--engine lexer`
skips the AST pass entirely.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

CHECKS = ("atomic-order", "blocking", "seqlock", "padded",
          "epoch-guard")
SOURCE_EXTS = (".cc", ".hh", ".cpp", ".hpp", ".h")

TAG_RE = re.compile(r"widx-lint:\s*(.*)$")
TAG_BODY_RE = re.compile(
    r"^(event-loop|seqlock-writer|padded|epoch-guard)"
    r"(?:\s*--\s*(\S.*))?$", re.S)
ALLOW_RE = re.compile(
    r"allow\(([a-z-]+)\)\s*(?:--\s*(\S.*))?$"
)

ATOMIC_CALL_RE = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and"
    r"|fetch_or|fetch_xor|compare_exchange_weak"
    r"|compare_exchange_strong)\s*\("
)

BLOCKING_PATTERNS = (
    (re.compile(r"\bMutexLock\b"), "MutexLock"),
    (re.compile(r"\b(?:std::)?lock_guard\b"), "std::lock_guard"),
    (re.compile(r"\b(?:std::)?unique_lock\b"), "std::unique_lock"),
    (re.compile(r"\b(?:std::)?scoped_lock\b"), "std::scoped_lock"),
    (re.compile(r"\.\s*lock\s*\("), "mutex .lock()"),
    (re.compile(r"\.\s*wait(?:_for|_until|For|Until)?\s*\("),
     "condition-variable wait"),
    (re.compile(r"\bsleep_(?:for|until)\s*\("), "sleep"),
    (re.compile(r"\b(?:usleep|nanosleep)\s*\("), "sleep"),
)

STRUCT_RE = re.compile(
    r"\b(struct|class)\s+"
    r"(?:alignas\s*\(\s*([A-Za-z0-9_]+)\s*\)\s*)?"
    r"([A-Za-z_]\w*)"
)

STORE_RE = re.compile(r"([A-Za-z_]\w*(?:\s*\.\s*[A-Za-z_]\w*)*)"
                      r"\s*\.\s*store\s*\(")

PADDED_ALIGNMENTS = ("64", "kCacheBlockBytes")

CHAIN_STEP_RE = re.compile(r"\b(nodeNext|bucketHeadFor)\s*\(")


class Finding:
    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def render(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.check,
                                   self.message)


class Comment:
    def __init__(self, line, text, standalone):
        self.line = line  # line the comment starts on
        self.text = text
        self.standalone = standalone  # nothing but whitespace before


def mask_source(text):
    """Blank out comments and string/char literals, preserving line
    structure, and collect the comments.

    Returns (masked_text, comments). Masked text has the same length
    and newline positions as the input; comment and literal bodies
    become spaces so structural regexes can't match inside them.
    """
    out = list(text)
    comments = []
    i = 0
    n = len(text)
    line = 1
    line_has_code = False

    def blank(a, b):
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            line += 1
            line_has_code = False
            i += 1
            continue
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            comments.append(
                Comment(line, text[i:j], not line_has_code))
            blank(i, j)
            i = j
            continue
        if c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            comments.append(
                Comment(line, text[i:j], not line_has_code))
            line += text.count("\n", i, j)
            blank(i, j)
            i = j
            line_has_code = False
            continue
        if c == "R" and nxt == '"':
            m = re.match(r'R"([^()\s\\]*)\(', text[i:])
            if m:
                delim = ")" + m.group(1) + '"'
                j = text.find(delim, i + m.end())
                j = n if j < 0 else j + len(delim)
                line += text.count("\n", i, j)
                blank(i + 2, j - 1)
                i = j
                line_has_code = True
                continue
        if c == '"' or c == "'":
            q = c
            j = i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            blank(i + 1, j - 1)
            i = j
            line_has_code = True
            continue
        if not c.isspace():
            line_has_code = True
        i += 1
    return "".join(out), comments


def line_starts(text):
    starts = [0]
    for i, c in enumerate(text):
        if c == "\n":
            starts.append(i + 1)
    return starts


def line_of(starts, pos):
    lo, hi = 0, len(starts) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if starts[mid] <= pos:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def match_paren(text, open_pos):
    """Position just past the `)` matching the `(` at open_pos, or
    len(text) when unbalanced."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def match_brace(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


class FileLint:
    def __init__(self, path, text):
        self.path = path
        self.text = text
        self.masked, self.comments = mask_source(text)
        self.starts = line_starts(self.masked)
        self.findings = []
        self.suppressions = {}  # line -> set(check)
        self.tags = []  # (line, kind, reason) for the marker tags
        self._parse_tags()

    def _code_lines(self):
        """Set of 1-based line numbers that carry code."""
        lines = self.masked.split("\n")
        return {i + 1 for i, l in enumerate(lines) if l.strip()}

    def _next_code_line(self, com, code):
        """First code line after a standalone comment; intervening
        comment-only lines do not consume it."""
        last = len(self.starts)
        target = com.line + 1 + com.text.count("\n")
        while target <= last and target not in code:
            target += 1
        return target

    def _parse_tags(self):
        code = self._code_lines()
        for com in self.comments:
            m = TAG_RE.search(com.text)
            if not m:
                continue
            body = m.group(1).strip()
            tm = TAG_BODY_RE.match(body)
            if tm:
                self.tags.append((com.line, tm.group(1),
                                  tm.group(2)))
                continue
            am = ALLOW_RE.match(body)
            if am:
                check, why = am.group(1), am.group(2)
                if check not in CHECKS:
                    self.findings.append(Finding(
                        self.path, com.line, "bad-suppression",
                        "allow(%s) names an unknown check" % check))
                    continue
                if not why:
                    self.findings.append(Finding(
                        self.path, com.line, "bad-suppression",
                        "allow(%s) without a justification "
                        "(`-- <reason>` is mandatory)" % check))
                    continue
                if com.standalone:
                    target = self._next_code_line(com, code)
                else:
                    target = com.line
                self.suppressions.setdefault(
                    target, set()).add(check)
                continue
            self.findings.append(Finding(
                self.path, com.line, "bad-suppression",
                "unrecognized widx-lint directive: %s" % body))

    def _add(self, line, check, message):
        if check in self.suppressions.get(line, ()):
            return
        self.findings.append(
            Finding(self.path, line, check, message))

    # -- regions ----------------------------------------------------

    def _function_region(self, tag_line):
        """(body_start_pos, body_end_pos) of the function following
        the tag, or None."""
        if tag_line >= len(self.starts):
            return None
        pos = self.starts[tag_line]  # start of the line after tag
        brace = self.masked.find("{", pos)
        if brace < 0:
            return None
        return brace, match_brace(self.masked, brace)

    # -- checks -----------------------------------------------------

    def check_atomic_order(self):
        for m in ATOMIC_CALL_RE.finditer(self.masked):
            open_pos = self.masked.index("(", m.end() - 1)
            close = match_paren(self.masked, open_pos)
            args = self.masked[open_pos + 1:close - 1]
            if "memory_order" in args:
                continue
            line = line_of(self.starts, m.start())
            self._add(line, "atomic-order",
                      ".%s() without an explicit memory_order "
                      "argument" % m.group(1))

    def atomic_candidate_lines(self):
        """Lines holding atomic-order findings (pre-suppression),
        for the libclang confirmation pass."""
        return {f.line for f in self.findings
                if f.check == "atomic-order"}

    def check_blocking(self):
        for tag_line, kind, _why in self.tags:
            if kind != "event-loop":
                continue
            region = self._function_region(tag_line)
            if region is None:
                self._add(tag_line, "blocking",
                          "event-loop tag with no function body "
                          "following it")
                continue
            body = self.masked[region[0]:region[1]]
            for pat, what in BLOCKING_PATTERNS:
                for m in pat.finditer(body):
                    line = line_of(self.starts,
                                   region[0] + m.start())
                    self._add(line, "blocking",
                              "%s inside an event-loop function"
                              % what)

    def check_seqlock(self):
        for tag_line, kind, _why in self.tags:
            if kind != "seqlock-writer":
                continue
            region = self._function_region(tag_line)
            if region is None:
                self._add(tag_line, "seqlock",
                          "seqlock-writer tag with no function "
                          "body following it")
                continue
            seq_stores = []   # (pos, first_arg, full_args)
            payload = []      # (pos, args)
            body_off = region[0]
            body = self.masked[body_off:region[1]]
            for m in STORE_RE.finditer(body):
                obj = m.group(1)
                open_pos = body.index("(", m.end() - 1)
                close = match_paren(body, open_pos)
                args = body[open_pos + 1:close - 1]
                first_arg = args.split(",")[0].strip()
                entry = (body_off + m.start(), first_arg, args)
                leaf = obj.split(".")[-1].strip()
                if "seq" in leaf.lower():
                    seq_stores.append(entry)
                else:
                    payload.append((body_off + m.start(), args))
            fn_line = line_of(self.starts, body_off)
            if len(seq_stores) < 2:
                self._add(fn_line, "seqlock",
                          "writer section needs two seq stores "
                          "(odd begin, even end); found %d"
                          % len(seq_stores))
                continue
            first, last = seq_stores[0], seq_stores[-1]
            if not re.search(r"\+\s*1$", first[1]):
                self._add(line_of(self.starts, first[0]), "seqlock",
                          "first seq store must publish an odd "
                          "value (expression ending `+ 1`)")
            if not re.search(r"\+\s*2$", last[1]):
                self._add(line_of(self.starts, last[0]), "seqlock",
                          "final seq store must publish the even "
                          "value (expression ending `+ 2`)")
            for pos, _arg, args in (first, last):
                if "memory_order_release" not in args:
                    self._add(line_of(self.starts, pos), "seqlock",
                              "seq stores must use "
                              "memory_order_release")
            inner = [p for p in payload
                     if first[0] < p[0] < last[0]
                     and "memory_order_relaxed" in p[1]]
            if not inner:
                self._add(fn_line, "seqlock",
                          "no relaxed payload store between the "
                          "odd and even seq bumps")

    def check_padded(self):
        padded_lines = {t[0] for t in self.tags if t[1] == "padded"}
        code = self._code_lines()
        claimed = set()
        for m in STRUCT_RE.finditer(self.masked):
            # Skip forward declarations and `friend class X;`.
            rest = self.masked[m.end():].lstrip()
            if rest.startswith(";"):
                continue
            line = line_of(self.starts, m.start())
            tagged = None
            for t in padded_lines:
                if t < line and all(
                        l not in code for l in range(t + 1, line)):
                    tagged = t
            name = m.group(3)
            if tagged is None and not name.endswith("Slot"):
                continue
            if tagged is not None:
                claimed.add(tagged)
            align = m.group(2)
            if align not in PADDED_ALIGNMENTS:
                why = ("tagged `widx-lint: padded`"
                       if tagged is not None
                       else "named *Slot")
                self._add(line, "padded",
                          "struct %s is %s but lacks alignas(64) / "
                          "alignas(kCacheBlockBytes)" % (name, why))
        for t in padded_lines - claimed:
            self._add(t, "padded",
                      "padded tag with no struct definition "
                      "following it")

    def _line_depths(self):
        """Brace depth at the start of each 1-based line."""
        depths = [0] * (len(self.starts) + 2)
        d = 0
        line = 1
        for c in self.masked:
            if c == "\n":
                line += 1
                depths[line] = d
            elif c == "{":
                d += 1
            elif c == "}":
                d -= 1
        return depths

    def check_epoch_guard(self):
        code = self._code_lines()
        last = len(self.starts)
        depths = self._line_depths()
        guards = []  # (tag_line, cover_from, cover_to)
        for tag_line, kind, why in self.tags:
            if kind != "epoch-guard":
                continue
            if not why:
                self._add(tag_line, "epoch-guard",
                          "epoch-guard marker without a "
                          "justification (`-- <who holds the pin>` "
                          "is mandatory)")
            target = tag_line + 1
            while target <= last and target not in code:
                target += 1
            if target > last:
                self._add(tag_line, "epoch-guard",
                          "epoch-guard marker with no code "
                          "following it")
                continue
            # Cover from the target to the end of its brace scope.
            d = depths[target]
            end = target
            while end + 1 <= last and depths[end + 1] >= d:
                end += 1
            guards.append((tag_line, tag_line, end))
        used = set()
        for m in CHAIN_STEP_RE.finditer(self.masked):
            line = line_of(self.starts, m.start())
            # The accessor's own definition (name at the start of
            # the line, per house style) is not a chain step — but
            # a marker inside its body documents the accessor's
            # load semantics, so the body claims covering guards.
            if not self.masked[self.starts[line - 1]:
                               m.start()].strip():
                brace = self.masked.find("{", m.end())
                if brace >= 0:
                    body_end = line_of(
                        self.starts,
                        match_brace(self.masked, brace) - 1)
                    for g in guards:
                        if line <= g[0] <= body_end:
                            used.add(g[0])
                continue
            hit = False
            for g in guards:
                if g[1] <= line <= g[2]:
                    used.add(g[0])
                    hit = True
            if not hit:
                self._add(line, "epoch-guard",
                          "%s() chain step outside any epoch-guard "
                          "marker's scope" % m.group(1))
        for g in guards:
            if g[0] not in used:
                self._add(g[0], "epoch-guard",
                          "epoch-guard marker whose scope contains "
                          "no chain step (stale?)")

    def run(self):
        self.check_atomic_order()
        self.check_blocking()
        self.check_seqlock()
        self.check_padded()
        self.check_epoch_guard()
        return self.findings


# -- optional libclang confirmation (atomic-order only) -------------

ATOMIC_METHODS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub",
    "fetch_and", "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong",
}


def clang_atomic_lines(path, extra_args):
    """Lines where libclang sees a call to a std::atomic member.

    Returns a set of line numbers, or None when the AST is
    unavailable (bindings missing, parse failure) — in which case
    the caller keeps the lexer findings unfiltered.
    """
    try:
        from clang import cindex
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
        args = ["-x", "c++", "-std=c++20"] + extra_args
        tu = index.parse(path, args=args)
    except Exception:
        return None
    lines = set()

    def walk(node):
        try:
            kind = node.kind
        except ValueError:
            return
        if kind == cindex.CursorKind.CALL_EXPR and \
                node.spelling in ATOMIC_METHODS:
            ref = node.referenced
            parent = ref.semantic_parent if ref else None
            if parent is not None and \
                    parent.spelling in ("atomic", "atomic_flag"):
                if node.location.file and \
                        os.path.samefile(str(node.location.file),
                                         path):
                    lines.add(node.location.line)
        for ch in node.get_children():
            walk(ch)

    walk(tu.cursor)
    return lines


def confirm_atomic_findings(lint, engine, clang_args):
    if engine == "lexer":
        return lint.findings
    confirmed = clang_atomic_lines(lint.path, clang_args)
    if confirmed is None:
        if engine == "clang":
            print("widx-lint: libclang unavailable or failed on %s; "
                  "keeping lexer findings" % lint.path,
                  file=sys.stderr)
        return lint.findings
    return [f for f in lint.findings
            if f.check != "atomic-order" or f.line in confirmed]


# -- driver ---------------------------------------------------------

def collect_sources(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTS):
                        files.append(os.path.join(root, name))
        else:
            files.append(p)
    return files


def lint_paths(paths, engine, clang_args):
    findings = []
    for path in collect_sources(paths):
        with open(path, "r", encoding="utf-8",
                  errors="replace") as f:
            text = f.read()
        lint = FileLint(path, text)
        lint.run()
        findings.extend(
            confirm_atomic_findings(lint, engine, clang_args))
    findings.sort(key=lambda f: (f.path, f.line, f.check))
    return findings


def self_test(corpus_dir, engine, clang_args):
    """Golden-corpus mode: lint every source in corpus_dir and
    compare (file, line, check) triples against expected.txt.

    Always runs the lexer engine regardless of --engine: the corpus
    pins lexer behavior (including the type-blind finding the
    libclang pass exists to filter), so letting the AST pass run
    here would make the golden file depend on which machine has
    python3-clang installed."""
    del engine  # forced below; see docstring
    engine = "lexer"
    expected_path = os.path.join(corpus_dir, "expected.txt")
    expected = set()
    with open(expected_path, "r", encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            loc, check = line.rsplit(" ", 1)
            fname, lno = loc.rsplit(":", 1)
            expected.add((fname, int(lno), check))
    got = set()
    for f in lint_paths([corpus_dir], engine, clang_args):
        got.add((os.path.basename(f.path), f.line, f.check))
    missing = expected - got
    surplus = got - expected
    for t in sorted(missing):
        print("MISSING  %s:%d %s" % t)
    for t in sorted(surplus):
        print("SURPLUS  %s:%d %s" % t)
    if missing or surplus:
        print("self-test FAILED: %d missing, %d surplus findings"
              % (len(missing), len(surplus)))
        return 1
    print("self-test OK: %d expected findings all reproduced"
          % len(expected))
    return 0


def main(argv):
    ap = argparse.ArgumentParser(
        prog="widx_lint",
        description="repo-specific concurrency invariant checker")
    ap.add_argument("paths", nargs="*",
                    help="files or directories to lint")
    ap.add_argument("--engine", choices=("auto", "lexer", "clang"),
                    default="auto",
                    help="auto (default): lexer, with libclang "
                         "confirmation of atomic-order findings "
                         "when importable; lexer: no libclang; "
                         "clang: warn when libclang is unusable")
    ap.add_argument("--clang-arg", action="append", default=[],
                    help="extra compile arg for the libclang pass "
                         "(repeatable), e.g. -Isrc")
    ap.add_argument("--self-test", metavar="DIR",
                    help="run the golden-corpus self test on DIR")
    ap.add_argument("--list-checks", action="store_true")
    opts = ap.parse_args(argv)

    if opts.list_checks:
        for c in CHECKS:
            print(c)
        return 0
    if opts.self_test:
        return self_test(opts.self_test, opts.engine, opts.clang_arg)
    if not opts.paths:
        ap.error("no paths given (or use --self-test DIR)")
    findings = lint_paths(opts.paths, opts.engine, opts.clang_arg)
    for f in findings:
        print(f.render())
    if findings:
        print("widx-lint: %d finding(s)" % len(findings),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
