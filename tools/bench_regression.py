#!/usr/bin/env python3
"""Bench-regression gate for the CI smoke run.

Compares google-benchmark JSON results files (the CI smoke runs of
sw_walkers_bench / service_bench / latency_bench) against the
committed bench/baseline.json and fails when a pinned kernel
regresses past its threshold.

Two gate families share the run:

**Throughput** (``pinned``): items_per_second rows, failing below
``1 - threshold`` (default 25%) of baseline. When the baseline names
a "reference" kernel, every pinned kernel is gated on its throughput
*relative to the reference measured in the same run*
(ratio-of-ratios) so host speed cancels and a slower CI runner can't
spuriously trip the gate.

**Latency percentiles** (``latency_pinned``): p50_ns / p99_ns fields
from the open-loop latency rows, failing *above*
``baseline * hostFactor * (1 + latency-threshold) + noise floor``.
The threshold is deliberately looser than the throughput gate
(default 40%): percentiles carry more run-to-run variance than
means. The additive per-field noise floor
(``latency_noise_floor_ns``) absorbs the multi-millisecond scheduler
spikes that shared CI runners inject into tail percentiles — the
gate still catches order-of-magnitude tail breakage (a lost wakeup,
a window held forever, an accidental sleep on the submit path),
which is the regression class a time-shared runner can reliably
detect. Absolute tail comparisons belong to dedicated hardware and
the committed BENCH_latency.json ladder. The host factor multiplies
(not divides): a runner with half the reference throughput is
allowed roughly twice the reference latency.

**Overload goodput** (``goodput_pinned``): goodput_fraction from
the OL_Overload rows (Ok-within-SLO completions / scheduled
arrivals, measured at ~4x the run's own saturation rate), failing
*below* ``baseline - goodput_noise_floor``. The floor is absolute
(fractions are already host-normalized: the overload rate scales
with the runner's measured saturation) and documented in the
baseline next to the values it pads; the committed 0.05 absorbs
best-of-N scheduler variance while still catching an admission
controller that stopped controlling (which collapses the adaptive
row to the static rows' fraction, a ~0.1 drop). On top of the
per-row bound, ``goodput_dominance`` rules assert the *ordering*
the overload ladder exists to demonstrate: each rule's winner row
must beat every row it is pinned against by at least ``margin`` —
a relative gate that no per-row noise floor can absorb away.

Every measured file is schema-validated before gating (top-level
"benchmarks" list, string names, numeric metric fields, p50 <= p99,
fractions in [0, 1]) so a malformed or truncated BENCH_*.json fails
loudly instead of silently dropping pinned coverage. Pinned kernels
missing from the measured run fail the gate too — in every family,
including goodput — so a renamed or deleted baseline row can't
silently drop coverage. Pinned rows whose K:<n> walker count
exceeds the runner's cores are skipped with a note rather than
gated on time-shared noise.

Refresh the baseline with:

    ./sw_walkers_bench --benchmark_min_time=0.1 \
        --benchmark_filter='large:0' \
        --benchmark_out=smoke.json --benchmark_out_format=json

(suffix-less min_time: older libbenchmark rejects "0.1s")
    python3 tools/bench_regression.py smoke.json bench/baseline.json \
        --update
"""

import argparse
import json
import os
import re
import sys

LATENCY_FIELDS = ("p50_ns", "p99_ns")


def schema_error(path, msg):
    sys.exit(f"schema error in {path}: {msg}")


def validate_file(path, data):
    """Schema-validate one BENCH_*.json before it can gate anything."""
    if not isinstance(data, dict):
        schema_error(path, "top level is not an object")
    benches = data.get("benchmarks")
    if not isinstance(benches, list):
        schema_error(
            path,
            'non-list "benchmarks" (a benchmark results file must '
            "carry a top-level list; metric sidecars without a "
            '"benchmarks" key are skipped before this check)')
    for i, b in enumerate(benches):
        where = f"benchmarks[{i}]"
        if not isinstance(b, dict):
            schema_error(path, f"{where} is not an object")
        name = b.get("name")
        if not isinstance(name, str) or not name:
            schema_error(path, f"{where} lacks a non-empty name")
        # Aggregate rows (--benchmark_repetitions: mean/median/
        # stddev/cv) carry *aggregated* user counters — stddev of
        # p50 samples may legitimately exceed stddev of p99
        # samples — and are excluded from gating anyway; only their
        # shape is checked.
        if b.get("run_type") == "aggregate":
            continue
        for field in ("items_per_second",) + LATENCY_FIELDS + (
                "p90_ns", "p999_ns", "max_ns"):
            v = b.get(field)
            if v is not None and (not isinstance(v, (int, float))
                                  or isinstance(v, bool) or v < 0):
                schema_error(
                    path, f"{where} ({name}): {field} is not a "
                          f"non-negative number: {v!r}")
        p50, p99 = b.get("p50_ns"), b.get("p99_ns")
        if p50 is not None and p99 is not None and p50 > p99:
            schema_error(
                path, f"{where} ({name}): p50_ns {p50} > p99_ns "
                      f"{p99} (percentiles must be monotone)")
        frac = b.get("goodput_fraction")
        if frac is not None and (not isinstance(frac, (int, float))
                                 or isinstance(frac, bool)
                                 or not 0.0 <= frac <= 1.0):
            schema_error(
                path, f"{where} ({name}): goodput_fraction is not "
                      f"in [0, 1]: {frac!r}")


def load_entries(path):
    """name -> full benchmark entry for every row in the run.

    Metric sidecar files — JSON objects with no top-level
    "benchmarks" key, e.g. a registry-snapshot dump written next to
    a bench run — carry observability context, not gated rows. They
    are skipped with a note (schema: gated files MUST have a
    "benchmarks" list; sidecars MUST NOT) rather than schema-failed,
    so a bench script can glob BENCH_*.json indiscriminately.
    """
    with open(path) as f:
        data = json.load(f)
    if isinstance(data, dict) and "benchmarks" not in data:
        print(f"note: {path} has no \"benchmarks\" list — treating "
              f"it as a non-gated metric sidecar and skipping")
        return {}
    validate_file(path, data)
    out = {}
    for b in data["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    return out


def merge_entries(paths):
    """Merge runs into one kernel namespace, refusing duplicates.

    A benchmark name appearing in two measured files used to let the
    last file win silently — a renamed or copy-pasted kernel could
    shadow the one the baseline pins and fake a pass. Cross-file
    duplicates are a merge error; fail loudly with the offenders.
    """
    merged = {}
    origin = {}
    dups = []
    for path in paths:
        for name, entry in load_entries(path).items():
            if name in merged:
                dups.append(f"{name} (in {origin[name]} and {path})")
                continue
            merged[name] = entry
            origin[name] = path
    if dups:
        sys.exit("duplicate benchmark name(s) across measured "
                 "files:\n  " + "\n  ".join(dups))
    return merged, origin


def provenance(origin, name, section):
    """Failure-message suffix naming the baseline section a gated row
    was pinned in and the measured file it matched — with several
    merged BENCH_*.json files and four gate families, 'which pin
    tripped, against which run' is the first triage question."""
    src = origin.get(name)
    where = f"matched {src}" if src else "no measured file matched"
    return f" [baseline section '{section}'; {where}]"


def walkers_of(name):
    """The K:<n> walker count encoded in a benchmark name, or None."""
    m = re.search(r"/K:(\d+)(/|$)", name)
    return int(m.group(1)) if m else None


def host_factor(measured, baseline):
    """norm such that measured_items * norm ~ baseline-host items.

    1.0 without a reference kernel. Latency allowances *multiply* by
    1/norm's inverse — see gate_latency.
    """
    reference = baseline.get("reference")
    if not reference:
        return 1.0
    ref = measured.get(reference)
    ref_got = ref.get("items_per_second") if ref else None
    ref_base = baseline.get("reference_items_per_second")
    if ref_got is None:
        sys.exit(f"reference kernel missing from measured run: "
                 f"{reference}")
    if not ref_base:
        sys.exit("baseline has 'reference' but no "
                 "'reference_items_per_second'; rerun --update")
    norm = ref_base / ref_got
    print(f"reference {reference}: {ref_got:.3e} measured vs "
          f"{ref_base:.3e} baseline (host factor "
          f"{1.0 / norm:.2f}x)\n")
    return norm


def gate_throughput(measured, origin, baseline, norm, threshold):
    pinned = baseline.get("pinned", {})
    failures = []
    width = max(map(len, pinned), default=0)
    cores = os.cpu_count() or 1
    for name, base_ips in sorted(pinned.items()):
        # K-walker rows need K real cores: on a smaller runner the
        # walkers time-share and the measurement gates scheduler
        # noise, not the kernel. Skip visibly rather than flake.
        k = walkers_of(name)
        if k is not None and k > cores:
            print(f"  {name:<{width}}  SKIPPED (K:{k} > "
                  f"{cores} hardware threads on this runner)")
            continue
        entry = measured.get(name)
        got = entry.get("items_per_second") if entry else None
        if got is None:
            failures.append(f"{name}: missing from measured run"
                            + provenance(origin, name, "pinned"))
            print(f"  {name:<{width}}  MISSING")
            continue
        ratio = got * norm / base_ips
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "REGRESSION"
            failures.append(
                f"{name}: {got:.3e} items/s vs baseline "
                f"{base_ips:.3e} ({ratio:.2f}x normalized, allowed "
                f">= {1.0 - threshold:.2f}x)"
                + provenance(origin, name, "pinned"))
        print(f"  {name:<{width}}  {got:>10.3e} vs {base_ips:>10.3e}"
              f"  {ratio:5.2f}x  {status}")
    return len(pinned), failures


def gate_latency(measured, origin, baseline, norm, threshold):
    """Latency regressions point the other way: fail when measured
    exceeds baseline * norm * (1 + threshold) + noise floor."""
    pinned = baseline.get("latency_pinned", {})
    floors = baseline.get("latency_noise_floor_ns", {})
    failures = []
    width = max(map(len, pinned), default=0)
    cores = os.cpu_count() or 1
    for name, fields in sorted(pinned.items()):
        k = walkers_of(name)
        if k is not None and k > cores:
            print(f"  {name:<{width}}  SKIPPED (K:{k} > "
                  f"{cores} hardware threads on this runner)")
            continue
        entry = measured.get(name)
        if entry is None:
            failures.append(
                f"{name}: missing from measured run"
                + provenance(origin, name, "latency_pinned"))
            print(f"  {name:<{width}}  MISSING")
            continue
        for field in LATENCY_FIELDS:
            base = fields.get(field)
            if base is None:
                continue
            got = entry.get(field)
            if got is None:
                failures.append(
                    f"{name}: {field} missing from measured row"
                    + provenance(origin, name, "latency_pinned"))
                print(f"  {name:<{width}}  {field:<7} MISSING")
                continue
            floor = floors.get(field, 0)
            allowed = base * norm * (1.0 + threshold) + floor
            status = "ok" if got <= allowed else "REGRESSION"
            if got > allowed:
                failures.append(
                    f"{name}: {field} {got / 1e3:.1f}us vs baseline "
                    f"{base / 1e3:.1f}us (allowed <= "
                    f"{allowed / 1e3:.1f}us = base * {norm:.2f} host "
                    f"* {1.0 + threshold:.2f} + {floor / 1e3:.0f}us "
                    f"floor)"
                    + provenance(origin, name, "latency_pinned"))
            print(f"  {name:<{width}}  {field:<7} "
                  f"{got / 1e3:>9.1f}us vs {base / 1e3:>9.1f}us  "
                  f"(allowed {allowed / 1e3:>9.1f}us)  {status}")
    return len(pinned), failures


def gate_goodput(measured, origin, baseline):
    """Overload-goodput gates: fail when a pinned row's
    goodput_fraction drops below baseline - goodput_noise_floor, or
    when a goodput_dominance rule's winner no longer beats every row
    it is pinned against by its margin."""
    pinned = baseline.get("goodput_pinned", {})
    floor = baseline.get("goodput_noise_floor", 0.05)
    failures = []
    width = max(map(len, pinned), default=0)
    cores = os.cpu_count() or 1

    def frac_of(name):
        entry = measured.get(name)
        return entry.get("goodput_fraction") if entry else None

    for name, base_frac in sorted(pinned.items()):
        k = walkers_of(name)
        if k is not None and k > cores:
            print(f"  {name:<{width}}  SKIPPED (K:{k} > "
                  f"{cores} hardware threads on this runner)")
            continue
        got = frac_of(name)
        if got is None:
            failures.append(
                f"{name}: goodput row missing from measured run"
                + provenance(origin, name, "goodput_pinned"))
            print(f"  {name:<{width}}  MISSING")
            continue
        allowed = max(0.0, base_frac - floor)
        status = "ok" if got >= allowed else "REGRESSION"
        if got < allowed:
            failures.append(
                f"{name}: goodput_fraction {got:.3f} vs baseline "
                f"{base_frac:.3f} (allowed >= {allowed:.3f} = "
                f"base - {floor:.2f} noise floor)"
                + provenance(origin, name, "goodput_pinned"))
        print(f"  {name:<{width}}  {got:5.3f} vs {base_frac:5.3f}"
              f"  (allowed {allowed:5.3f})  {status}")

    for rule in baseline.get("goodput_dominance", []):
        winner = rule["winner"]
        margin = rule.get("margin", 0.0)
        w = frac_of(winner)
        if w is None:
            failures.append(
                f"dominance rule: winner row missing from measured "
                f"run: {winner}"
                + provenance(origin, winner, "goodput_dominance"))
            continue
        for other in rule["over"]:
            v = frac_of(other)
            if v is None:
                failures.append(
                    f"dominance rule: row missing from measured "
                    f"run: {other}"
                    + provenance(origin, other, "goodput_dominance"))
                continue
            status = "ok" if w >= v + margin else "REGRESSION"
            if w < v + margin:
                failures.append(
                    f"{winner}: goodput_fraction {w:.3f} no longer "
                    f"beats {other} ({v:.3f}) by margin {margin:.2f}"
                    + provenance(origin, winner, "goodput_dominance"))
            print(f"  dominance: {winner} ({w:.3f}) >= "
                  f"{other} ({v:.3f}) + {margin:.2f}  {status}")
    return len(pinned), failures


def update_baseline(measured, baseline, path):
    names = list(baseline.get("pinned", {}))
    reference = baseline.get("reference")
    if reference:
        names.append(reference)
    lat_names = list(baseline.get("latency_pinned", {}))
    good_names = list(baseline.get("goodput_pinned", {}))
    missing = [n for n in names if n not in measured or
               "items_per_second" not in measured[n]]
    missing += [n for n in lat_names
                if n not in measured or
                any(f not in measured[n] for f in LATENCY_FIELDS)]
    missing += [n for n in good_names
                if n not in measured or
                "goodput_fraction" not in measured[n]]
    if missing:
        sys.exit("--update: measured run lacks pinned kernels:\n  "
                 + "\n  ".join(missing))
    baseline["pinned"] = {
        n: measured[n]["items_per_second"]
        for n in baseline.get("pinned", {})
    }
    if reference:
        baseline["reference_items_per_second"] = \
            measured[reference]["items_per_second"]
    if lat_names:
        baseline["latency_pinned"] = {
            n: {f: measured[n][f] for f in LATENCY_FIELDS}
            for n in lat_names
        }
    if good_names:
        baseline["goodput_pinned"] = {
            n: measured[n]["goodput_fraction"] for n in good_names
        }
    with open(path, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"updated {len(baseline.get('pinned', {}))} throughput + "
          f"{len(lat_names)} latency + {len(good_names)} goodput "
          f"kernels in {path}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("measured", nargs="+",
                    help="benchmark JSON file(s) from the smoke "
                         "run(s); several files (e.g. the "
                         "sw_walkers, service, and latency smoke "
                         "runs) merge into one kernel namespace")
    ap.add_argument("baseline", help="committed bench/baseline.json")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max allowed fractional throughput "
                         "regression (default 0.25 = 25%%)")
    ap.add_argument("--latency-threshold", type=float, default=0.40,
                    help="max allowed fractional latency-percentile "
                         "increase, before the noise floor "
                         "(default 0.40 = 40%%)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline's pinned values from "
                         "the measured run instead of gating")
    args = ap.parse_args()

    measured, origin = merge_entries(args.measured)
    with open(args.baseline) as f:
        baseline = json.load(f)

    if args.update:
        update_baseline(measured, baseline, args.baseline)
        return

    norm = host_factor(measured, baseline)
    n_tp, failures = gate_throughput(measured, origin, baseline,
                                     norm, args.threshold)
    n_lat, lat_failures = gate_latency(measured, origin, baseline,
                                       norm,
                                       args.latency_threshold)
    n_good, good_failures = gate_goodput(measured, origin,
                                         baseline)
    failures += lat_failures + good_failures

    if failures:
        print(f"\n{len(failures)} pinned kernel(s) regressed:",
              file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        sys.exit(1)
    print(f"\nall {n_tp} throughput kernels within "
          f"{args.threshold:.0%}, {n_lat} latency rows within "
          f"{args.latency_threshold:.0%}+floor, and {n_good} "
          f"goodput rows within the noise floor of baseline")


if __name__ == "__main__":
    main()
