#!/usr/bin/env python3
"""Bench-regression gate for the CI smoke run.

Compares a google-benchmark JSON results file (the CI smoke run of
sw_walkers_bench) against the committed bench/baseline.json and fails
when any pinned probe kernel regresses by more than the threshold
(default 25% items/s).

When the baseline names a "reference" kernel, every pinned kernel is
gated on its throughput *relative to the reference measured in the
same run* (ratio-of-ratios). Host speed then cancels out, so the
committed baseline stays meaningful across runner generations and a
slower CI host can't spuriously trip the gate; without a reference
the comparison is absolute.

The baseline pins a small set of kernels that must stay fast: the
scalar pipeline and the walker-pool scaling points on the L1-resident
smoke dataset. Pinned kernels missing from the measured run fail the
gate too, so a rename can't silently drop coverage.

Refresh the baseline with:

    ./sw_walkers_bench --benchmark_min_time=0.1 \
        --benchmark_filter='large:0' \
        --benchmark_out=smoke.json --benchmark_out_format=json

(suffix-less min_time: older libbenchmark rejects "0.1s")
    python3 tools/bench_regression.py smoke.json bench/baseline.json \
        --update
"""

import argparse
import json
import os
import re
import sys


def load_measured(path):
    """name -> items_per_second for every benchmark in the run."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        ips = b.get("items_per_second")
        if ips:
            out[b["name"]] = float(ips)
    return out


def merge_measured(paths):
    """Merge runs into one kernel namespace, refusing duplicates.

    A benchmark name appearing in two measured files used to let the
    last file win silently — a renamed or copy-pasted kernel could
    shadow the one the baseline pins and fake a pass. Cross-file
    duplicates are a merge error; fail loudly with the offenders.
    """
    merged = {}
    origin = {}
    dups = []
    for path in paths:
        for name, ips in load_measured(path).items():
            if name in merged:
                dups.append(f"{name} (in {origin[name]} and {path})")
                continue
            merged[name] = ips
            origin[name] = path
    if dups:
        sys.exit("duplicate benchmark name(s) across measured "
                 "files:\n  " + "\n  ".join(dups))
    return merged


def walkers_of(name):
    """The K:<n> walker count encoded in a benchmark name, or None."""
    m = re.search(r"/K:(\d+)(/|$)", name)
    return int(m.group(1)) if m else None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("measured", nargs="+",
                    help="benchmark JSON file(s) from the smoke "
                         "run(s); several files (e.g. the "
                         "sw_walkers and service smoke runs) merge "
                         "into one kernel namespace")
    ap.add_argument("baseline", help="committed bench/baseline.json")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max allowed fractional regression "
                         "(default 0.25 = 25%%)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline's pinned values from "
                         "the measured run instead of gating")
    args = ap.parse_args()

    measured = merge_measured(args.measured)
    with open(args.baseline) as f:
        baseline = json.load(f)
    pinned = baseline["pinned"]
    reference = baseline.get("reference")

    if args.update:
        missing = [n for n in list(pinned) + ([reference] if reference
                                              else [])
                   if n not in measured]
        if missing:
            sys.exit("--update: measured run lacks pinned kernels:\n  "
                     + "\n  ".join(missing))
        baseline["pinned"] = {n: measured[n] for n in pinned}
        if reference:
            baseline["reference_items_per_second"] = measured[reference]
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"updated {len(pinned)} pinned kernels in {args.baseline}")
        return

    # Ratio-of-ratios normalization: divide both sides by the
    # reference kernel's throughput so host speed cancels.
    norm = 1.0
    if reference:
        ref_got = measured.get(reference)
        ref_base = baseline.get("reference_items_per_second")
        if ref_got is None:
            sys.exit(f"reference kernel missing from measured run: "
                     f"{reference}")
        if not ref_base:
            sys.exit("baseline has 'reference' but no "
                     "'reference_items_per_second'; rerun --update")
        norm = ref_base / ref_got
        print(f"reference {reference}: {ref_got:.3e} measured vs "
              f"{ref_base:.3e} baseline (host factor "
              f"{1.0 / norm:.2f}x)\n")

    failures = []
    width = max(map(len, pinned), default=0)
    cores = os.cpu_count() or 1
    for name, base_ips in sorted(pinned.items()):
        # K-walker rows need K real cores: on a smaller runner the
        # walkers time-share and the measurement gates scheduler
        # noise, not the kernel. Skip visibly rather than flake.
        k = walkers_of(name)
        if k is not None and k > cores:
            print(f"  {name:<{width}}  SKIPPED (K:{k} > "
                  f"{cores} hardware threads on this runner)")
            continue
        got = measured.get(name)
        if got is None:
            failures.append(f"{name}: missing from measured run")
            print(f"  {name:<{width}}  MISSING")
            continue
        ratio = got * norm / base_ips
        status = "ok"
        if ratio < 1.0 - args.threshold:
            status = "REGRESSION"
            failures.append(
                f"{name}: {got:.3e} items/s vs baseline "
                f"{base_ips:.3e} ({ratio:.2f}x normalized, allowed "
                f">= {1.0 - args.threshold:.2f}x)")
        print(f"  {name:<{width}}  {got:>10.3e} vs {base_ips:>10.3e}"
              f"  {ratio:5.2f}x  {status}")

    if failures:
        print(f"\n{len(failures)} pinned kernel(s) regressed >"
              f"{args.threshold:.0%}:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        sys.exit(1)
    print(f"\nall {len(pinned)} pinned kernels within "
          f"{args.threshold:.0%} of baseline")


if __name__ == "__main__":
    main()
